"""Public sweep API: one call from grid description to ordered results.

:func:`sweep` is the front door the table/figure modules, the examples,
and the benchmarks all share: describe a (workload × trace × buffer) grid,
pick an execution backend by name (or pass an instance), and get back the
expanded :class:`~repro.experiments.backends.RunSpec` list alongside one
:class:`~repro.sim.results.SimulationResult` per spec, in the canonical
serial iteration order.  Every backend returns identical results in the
same order, so the choice is purely about throughput::

    from repro.experiments import ExperimentSettings, sweep

    run = sweep(workloads=("SC",), settings=ExperimentSettings(quick=True),
                backend="pool+batch")
    for spec, result in zip(run.specs, run.results):
        print(spec.trace_name, result.buffer_name, result.work_units)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.buffers.base import EnergyBuffer
from repro.experiments.backends import (
    ExecutionBackend,
    ProgressCallback,
    RunSpec,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSettings,
    WORKLOAD_ORDER,
    standard_buffers,
)
from repro.experiments.store import StoreStats
from repro.sim.results import SimulationResult

__all__ = ["SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepResult:
    """What a sweep ran (``specs``) and what came back (``results``).

    ``specs[i]`` describes the grid cell that produced ``results[i]``;
    ``backend`` is the registry name (or class name) of the backend that
    executed the grid.  ``cache_stats`` carries the result store's hit/miss
    delta for this run when a memoizing ``cached:`` backend executed it
    (``None`` otherwise).  Iterating yields ``(spec, result)`` pairs.
    """

    specs: List[RunSpec]
    results: List[SimulationResult]
    backend: str
    cache_stats: Optional[StoreStats] = None

    def __iter__(self) -> Iterator[Tuple[RunSpec, SimulationResult]]:
        return iter(zip(self.specs, self.results))

    def __len__(self) -> int:
        return len(self.results)


def sweep(
    workloads: Iterable[str] = WORKLOAD_ORDER,
    trace_names: Optional[Iterable[str]] = None,
    *,
    settings: Optional[ExperimentSettings] = None,
    backend: Optional[Union[str, ExecutionBackend]] = None,
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Run a (workload × trace × buffer) grid through an execution backend.

    ``backend`` is a registry name (``serial``, ``pool``, ``batch``,
    ``pool+batch``, or anything registered via
    :func:`~repro.experiments.backends.register_backend`) or a ready
    :class:`~repro.experiments.backends.ExecutionBackend` instance;
    ``None`` resolves from ``settings`` the same way the CLI does.
    """
    settings = settings if settings is not None else ExperimentSettings()
    runner = ExperimentRunner(settings, buffer_factory=buffer_factory, backend=backend)
    specs = runner.grid_specs(workloads, trace_names)
    resolved = runner.resolved_backend()
    results = resolved.run_specs(specs, progress=progress)
    return SweepResult(
        specs=specs,
        results=results,
        backend=getattr(resolved, "name", type(resolved).__name__),
        cache_stats=getattr(resolved, "last_run_stats", None),
    )
