"""Content-addressed result store and the memoizing ``cached:`` backend.

Repeated and overlapping sweeps dominate the serving shape this repo is
growing toward, yet every grid cell is a deterministic function of its
:class:`~repro.experiments.backends.RunSpec` and the simulator code.  This
module makes that determinism pay: :class:`ResultStore` maps
``sha256(canonical RunSpec fingerprint + code-version salt)`` to a
serialized :class:`~repro.sim.results.SimulationResult`, and
:class:`CachedBackend` — reachable as ``cached:<inner>`` through the
backend registry (``cached:serial``, ``cached:pool+batch``, …) — partitions
a grid into hits (loaded from the store) and misses (delegated to the
inner backend, then written back), preserving spec order.

Cache keys are *content addresses*:

* Settings canonicalize field-order-independently, dropping fields that
  equal their declared defaults (spelling a default explicitly and leaving
  it unset hash identically) and the execution-only knobs (``workers``,
  ``batch``, ``backend``, ``cache_dir``, ``use_cache``) that cannot change
  results — so a result computed under ``cached:pool+batch`` is a hit for
  ``cached:serial``.
* ``buffer_factory`` (and any other callable) is identified by its
  module-qualified import path — the same picklability contract the pool
  backends already impose.  The factory's *code* is only covered by the
  salt when it lives in the ``repro`` tree; out-of-tree factories that
  change behavior under an unchanged name need a cache clear (or an
  explicit salt).
* A code-version salt hashed over the installed ``repro`` source tree is
  folded into every key, so *any* code change invalidates the store
  wholesale rather than risking stale hits.

Writes go through a same-directory temp file and :func:`os.replace`, so
concurrent pool workers can never leave a torn entry; loads treat any
unreadable, undecodable, or mismatching entry as a miss, never a crash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import uuid
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.exceptions import ConfigurationError
from repro.experiments.backends import CACHED_PREFIX
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.experiments.backends import (
        ExecutionBackend,
        ProgressCallback,
        RunSpec,
    )
    from repro.experiments.runner import ExperimentSettings

log = logging.getLogger("repro.experiments.store")

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXECUTION_ONLY_FIELDS",
    "STATS_FILENAME",
    "CachedBackend",
    "ResultStore",
    "StoreStats",
    "cached_backend_from_settings",
    "callable_identity",
    "canonical_settings",
    "code_version_salt",
    "settings_fingerprint",
    "spec_fingerprint",
]

#: Where ``cached:<inner>`` backends keep entries when no cache_dir is set.
DEFAULT_CACHE_DIR = ".sweep-cache"

#: Settings fields that select *how* a sweep executes, not *what* it
#: computes — excluded from fingerprints so results cache across backends.
EXECUTION_ONLY_FIELDS = frozenset(
    {
        "backend",
        "batch",
        "cache_dir",
        "use_cache",
        "workers",
        "remote_workers",
        "remote_listen",
    }
)

#: Name of the per-store JSON stats dump (the CI cache gate reads it).
STATS_FILENAME = "store-stats.json"

_FINGERPRINT_ATTR = "_repro_settings_fingerprint"


# --------------------------------------------------------------------------
# Canonicalization
# --------------------------------------------------------------------------


def callable_identity(fn: Any) -> str:
    """``module:qualname`` for a module-level callable.

    Fingerprints identify callables (buffer factories) by import path — the
    same constraint the pool backends already impose via pickling.  Lambdas
    and local functions have no stable import path and are rejected.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ConfigurationError(
            f"cannot fingerprint {fn!r}: cached sweeps need module-level "
            "callables (lambdas and local functions have no stable identity)"
        )
    return f"{module}:{qualname}"


def _canonical(value: Any) -> Any:
    """``value`` reduced to a deterministic JSON-serializable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [_canonical(item) for item in value]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, dict):
        return {
            str(key): _canonical(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": f"{type(value).__module__}.{type(value).__qualname__}",
            "fields": {
                field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if callable(value):
        return callable_identity(value)
    raise ConfigurationError(
        f"cannot fingerprint value of type {type(value).__qualname__!r}; "
        "settings fields must reduce to JSON-serializable primitives"
    )


def _dumps(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def canonical_settings(settings: "ExperimentSettings") -> Dict[str, Any]:
    """Field-order-independent canonical form of ``settings``.

    Only fields that *differ* from their declared defaults are included, so
    explicitly spelling a default (``fast_forward=True``, ``dt_on=0.01``)
    and leaving the field unset canonicalize identically, and adding a new
    defaulted field later does not invalidate old keys by itself.  The
    class's module-qualified name is part of the form, so out-of-tree
    settings subclasses never collide with the base class.
    """
    cls = type(settings)
    fields: Dict[str, Any] = {}
    for field in dataclasses.fields(settings):
        if field.name in EXECUTION_ONLY_FIELDS:
            continue
        value = _canonical(getattr(settings, field.name))
        if field.default is not dataclasses.MISSING:
            default = field.default
        elif field.default_factory is not dataclasses.MISSING:
            default = field.default_factory()
        else:
            fields[field.name] = value
            continue
        if value != _canonical(default):
            fields[field.name] = value
    return {"class": f"{cls.__module__}.{cls.__qualname__}", "fields": fields}


def settings_fingerprint(settings: "ExperimentSettings") -> str:
    """Canonical JSON fingerprint of ``settings``, memoized per instance.

    This string doubles as the settings half of
    :attr:`~repro.experiments.backends.RunSpec.group_key`, so lane grouping
    and caching share one identity — and settings subclasses with
    unhashable fields (lists, dicts) group correctly because the key is a
    plain string rather than the dataclass itself.
    """
    cached = getattr(settings, _FINGERPRINT_ATTR, None)
    if cached is None:
        cached = _dumps(canonical_settings(settings))
        try:  # frozen dataclasses still permit object.__setattr__
            object.__setattr__(settings, _FINGERPRINT_ATTR, cached)
        except AttributeError:  # __slots__ classes have nowhere to memoize
            pass
    return cached


def spec_fingerprint(spec: "RunSpec") -> str:
    """Canonical JSON fingerprint of one grid cell (salt not included)."""
    return _dumps(
        {
            "workload": spec.workload,
            "trace": spec.trace_name,
            "buffer_index": spec.buffer_index,
            "buffer_factory": callable_identity(spec.buffer_factory),
            "settings": json.loads(settings_fingerprint(spec.settings)),
        }
    )


def code_version_salt() -> str:
    """A digest of the installed ``repro`` source tree.

    Folded into every cache key, so any code change — engine, buffers,
    workloads, anything importable from :mod:`repro` — invalidates the
    store wholesale.  The ``REPRO_CACHE_SALT`` environment variable
    overrides the computed digest (useful for pinning a store across
    checkouts, or for experiments that deliberately keep entries live).
    """
    override = os.environ.get("REPRO_CACHE_SALT")
    if override:
        return override
    return _source_tree_salt()


@lru_cache(maxsize=1)
def _source_tree_salt() -> str:
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


# --------------------------------------------------------------------------
# The store
# --------------------------------------------------------------------------


@dataclass
class StoreStats:
    """Cumulative hit/miss/byte counters for one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def __sub__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            writes=self.writes - other.writes,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
        )

    def snapshot(self) -> "StoreStats":
        return dataclasses.replace(self)

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


#: Process-cumulative stats per store root: one stats file per root reflects
#: every sweep this process ran against it, not just the last one.
_PROCESS_STATS: Dict[str, StoreStats] = {}


def _atomic_write(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via a same-directory temp file + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class ResultStore:
    """Content-addressed, on-disk map from run-spec keys to results.

    Entries live at ``root/<key[:2]>/<key>.pkl`` where ``key`` is
    ``sha256(spec fingerprint + salt)``; each pickle payload carries the
    fingerprint it was stored under, which :meth:`load` re-verifies so a
    foreign or recycled file can never surface as a wrong result.  Writes
    are atomic (temp file + :func:`os.replace`, last-writer-wins), and
    loads are corruption-tolerant: any unreadable, undecodable, or
    mismatching entry counts as a miss, never a crash.
    """

    def __init__(self, root: Union[str, Path], salt: Optional[str] = None) -> None:
        self.root = Path(root)
        self.salt = code_version_salt() if salt is None else salt
        self.stats = StoreStats()
        self._process_stats = _PROCESS_STATS.setdefault(
            str(self.root.resolve()), StoreStats()
        )

    def key_for(self, spec: "RunSpec") -> str:
        """The content address of ``spec`` under this store's salt."""
        material = spec_fingerprint(spec) + "\x00" + self.salt
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def entry_path(self, spec: "RunSpec") -> Path:
        """Where ``spec``'s entry lives (whether or not it exists yet)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, spec: "RunSpec") -> Optional[SimulationResult]:
        """The stored result for ``spec``, or ``None`` (a miss).

        A missing entry is the ordinary cold miss and stays quiet; an
        entry that exists but cannot be used (unreadable, torn, corrupt,
        or carrying a foreign fingerprint) is *also* a miss — the store's
        corruption-tolerance contract — but leaves a log trail, so a
        recurring bad entry is diagnosable instead of silently
        re-simulated forever.
        """
        path = self.entry_path(spec)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._record(misses=1)
            return None
        except OSError as error:
            log.warning("unreadable store entry %s treated as a miss: %s", path, error)
            self._record(misses=1)
            return None
        try:
            payload = pickle.loads(blob)
            result = payload["result"]
            if payload["fingerprint"] != spec_fingerprint(spec):
                raise ValueError("fingerprint mismatch")
            if not isinstance(result, SimulationResult):
                raise TypeError("entry does not hold a SimulationResult")
        except Exception as error:  # torn, corrupt, or foreign entry
            log.warning("corrupt store entry %s treated as a miss: %s", path, error)
            self._record(misses=1)
            return None
        self._record(hits=1, bytes_read=len(blob))
        return result

    def store(self, spec: "RunSpec", result: SimulationResult) -> None:
        """Write ``result`` under ``spec``'s key."""
        payload = {"fingerprint": spec_fingerprint(spec), "result": result}
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.entry_path(spec), blob)
        self._record(writes=1, bytes_written=len(blob))

    def write_stats(self) -> Path:
        """Dump this process's cumulative stats for this root as JSON."""
        payload = dict(self._process_stats.as_dict(), root=str(self.root))
        blob = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        path = self.root / STATS_FILENAME
        _atomic_write(path, blob)
        return path

    def _record(self, **deltas: int) -> None:
        for stats in (self.stats, self._process_stats):
            for name, delta in deltas.items():
                setattr(stats, name, getattr(stats, name) + delta)


# --------------------------------------------------------------------------
# The memoizing backend
# --------------------------------------------------------------------------


class CachedBackend:
    """Memoizing wrapper: store hits load, misses run on ``inner``.

    Preserves the backend contract exactly — one result per spec, in spec
    order, bit-identical to the inner backend (a hit is just an earlier
    run's result) — and exposes the last run's hit/miss delta as
    :attr:`last_run_stats`, which :func:`repro.experiments.sweep` surfaces
    as ``SweepResult.cache_stats``.  ``progress`` fires in spec order after
    the grid completes (hits and misses finish interleaved, so there is no
    meaningful earlier moment per cell).

    ``write_stats_file`` controls the per-root ``store-stats.json`` dump:
    remote sweep *workers* write results through a shared store but pass
    ``False`` so their partial, per-process counters never clobber the
    coordinating client's stats file.
    """

    def __init__(
        self,
        inner: "ExecutionBackend",
        store: ResultStore,
        write_stats_file: bool = True,
    ) -> None:
        self.inner = inner
        self.store = store
        self.write_stats_file = write_stats_file
        self.last_run_stats: Optional[StoreStats] = None

    @property
    def name(self) -> str:
        return CACHED_PREFIX + getattr(self.inner, "name", type(self.inner).__name__)

    def run_specs(
        self,
        specs: Sequence["RunSpec"],
        progress: Optional["ProgressCallback"] = None,
    ) -> List[SimulationResult]:
        specs = list(specs)
        before = self.store.stats.snapshot()
        results: List[Optional[SimulationResult]] = [None] * len(specs)
        miss_indices: List[int] = []
        for index, spec in enumerate(specs):
            hit = self.store.load(spec)
            if hit is None:
                miss_indices.append(index)
            else:
                results[index] = hit
        if miss_indices:
            computed = self.inner.run_specs([specs[i] for i in miss_indices])
            for index, result in zip(miss_indices, computed):
                self.store.store(specs[index], result)
                results[index] = result
        self.last_run_stats = self.store.stats - before
        if self.write_stats_file:
            self.store.write_stats()
        ordered: List[SimulationResult] = []
        for result in results:
            assert result is not None  # every spec is a hit or a computed miss
            ordered.append(result)
            if progress is not None:
                progress(result)
        return ordered


def cached_backend_from_settings(
    name: str, settings: "ExperimentSettings"
) -> CachedBackend:
    """Resolve ``cached:<inner>`` into a wrapped backend for ``settings``.

    The registry's fallback for ``cached:`` names without an explicit
    registration; the store root comes from ``settings.cache_dir``
    (default :data:`DEFAULT_CACHE_DIR`).
    """
    from repro.experiments.backends import resolve_backend

    inner_name = name[len(CACHED_PREFIX) :]
    if not inner_name or inner_name.startswith(CACHED_PREFIX):
        raise ConfigurationError(
            f"invalid cached backend name {name!r}; expected cached:<inner> "
            "where <inner> is a non-cached backend"
        )
    inner = resolve_backend(inner_name, settings)
    root = getattr(settings, "cache_dir", None) or DEFAULT_CACHE_DIR
    return CachedBackend(inner, ResultStore(root))
