"""REACT reproduction: energy-adaptive buffering for batteryless systems.

This library reproduces the system described in *"Energy-adaptive Buffering
for Efficient, Responsive, and Persistent Batteryless Systems"* (Williams &
Hicks, ASPLOS 2024) as a laptop-scale simulation: the REACT reconfigurable
capacitor-bank buffer, the static and Morphy baselines it is evaluated
against, the energy-harvesting and platform substrates it runs on, and the
experiment harness that regenerates every table and figure of the paper's
evaluation.

Quickstart::

    from repro import (
        BatterylessSystem, Simulator, ReactBuffer, StaticBuffer,
        SenseAndCompute, generate_table3_trace,
    )

    trace = generate_table3_trace("RF Mobile")
    system = BatterylessSystem.build(trace, ReactBuffer(), SenseAndCompute())
    result = Simulator(system).run()
    print(result.work_units, result.latency)
"""

from repro.buffers import (
    CapybaraBuffer,
    DewdropBuffer,
    EnergyBuffer,
    MorphyBuffer,
    ReactBuffer,
    StaticBuffer,
)
from repro.core import (
    BankSpec,
    CapacitorBank,
    ReactConfig,
    ReactController,
    ReactHardware,
    table1_config,
)
from repro.harvester import (
    HarvestingFrontend,
    PowerTrace,
    generate_table3_trace,
    generate_table3_traces,
    rf_trace,
    solar_trace,
)
from repro.platform import Microcontroller, MSP430FR5994, PowerGate, PowerMode
from repro.sim import BatterylessSystem, Recorder, SimulationResult, Simulator
from repro.workloads import (
    DataEncryption,
    PacketForwarding,
    RadioTransmit,
    SenseAndCompute,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # buffers
    "EnergyBuffer",
    "StaticBuffer",
    "MorphyBuffer",
    "ReactBuffer",
    "CapybaraBuffer",
    "DewdropBuffer",
    # REACT core
    "ReactConfig",
    "BankSpec",
    "table1_config",
    "CapacitorBank",
    "ReactHardware",
    "ReactController",
    # harvester
    "PowerTrace",
    "HarvestingFrontend",
    "generate_table3_trace",
    "generate_table3_traces",
    "rf_trace",
    "solar_trace",
    # platform
    "Microcontroller",
    "MSP430FR5994",
    "PowerGate",
    "PowerMode",
    # workloads
    "Workload",
    "DataEncryption",
    "SenseAndCompute",
    "RadioTransmit",
    "PacketForwarding",
    # simulation
    "BatterylessSystem",
    "Simulator",
    "Recorder",
    "SimulationResult",
]
