"""Switch models for capacitor-bank reconfiguration.

REACT toggles double-pole-double-throw (DPDT) switches to move a bank
between its series and parallel configurations, and uses break-before-make
sequencing so no short-circuit current flows during the transition.  The
models here track switch state, count actuations, and account for the gate
drive energy each actuation costs, which feeds the controller power-overhead
experiment (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ConfigurationError


class SwitchState(Enum):
    """Position of a reconfiguration switch."""

    OPEN = "open"
    POSITION_A = "a"
    POSITION_B = "b"


@dataclass
class BreakBeforeMakeSwitch:
    """A single-pole changeover switch with break-before-make sequencing.

    The switch passes through ``OPEN`` on every transition; the time spent
    open (``break_time``) is the window during which the associated bank is
    disconnected and incoming current flows directly to the last-level
    buffer (§3.3.3).
    """

    name: str = "switch"
    break_time: float = 1e-4
    actuation_energy: float = 1e-7
    state: SwitchState = SwitchState.OPEN
    actuation_count: int = field(default=0, init=False)
    energy_spent: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.break_time < 0.0:
            raise ConfigurationError(
                f"break time must be non-negative, got {self.break_time}"
            )
        if self.actuation_energy < 0.0:
            raise ConfigurationError(
                f"actuation energy must be non-negative, got {self.actuation_energy}"
            )

    def set_state(self, new_state: SwitchState) -> float:
        """Move the switch; returns the time the pole spends open."""
        if new_state is self.state:
            return 0.0
        self.actuation_count += 1
        self.energy_spent += self.actuation_energy
        previous = self.state
        self.state = new_state
        if previous is SwitchState.OPEN or new_state is SwitchState.OPEN:
            return 0.0 if new_state is SwitchState.OPEN else self.break_time
        return self.break_time


@dataclass
class DpdtSwitch:
    """A double-pole-double-throw switch built from two ganged poles."""

    name: str = "dpdt"
    break_time: float = 1e-4
    actuation_energy: float = 2e-7

    def __post_init__(self) -> None:
        self.pole_a = BreakBeforeMakeSwitch(
            name=f"{self.name}.a",
            break_time=self.break_time,
            actuation_energy=self.actuation_energy / 2.0,
        )
        self.pole_b = BreakBeforeMakeSwitch(
            name=f"{self.name}.b",
            break_time=self.break_time,
            actuation_energy=self.actuation_energy / 2.0,
        )

    @property
    def state(self) -> SwitchState:
        return self.pole_a.state

    @property
    def actuation_count(self) -> int:
        return max(self.pole_a.actuation_count, self.pole_b.actuation_count)

    @property
    def energy_spent(self) -> float:
        return self.pole_a.energy_spent + self.pole_b.energy_spent

    def set_state(self, new_state: SwitchState) -> float:
        """Throw both poles together; returns the break (open) time."""
        open_a = self.pole_a.set_state(new_state)
        open_b = self.pole_b.set_state(new_state)
        return max(open_a, open_b)
