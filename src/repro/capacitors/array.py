"""Vectorized lockstep state for many independent single capacitors.

A :class:`CapacitorArray` is the capacitor layer's contribution to the
multi-system batch engine (:mod:`repro.sim.batch`): it holds the charge of N
independent :class:`~repro.capacitors.capacitor.Capacitor` instances in one
numpy array and advances all of them with a single elementwise operation per
simulation step.

Equivalence contract
--------------------

Every method reproduces the scalar :class:`Capacitor` update **operation for
operation** — the same expressions, in the same order, evaluated in IEEE-754
double precision — so a lane's charge trajectory is bit-identical to running
its capacitor through the scalar engine.  (This is also why the scalar hot
paths use :func:`math.sqrt` rather than ``** 0.5``: ``numpy.sqrt`` and
``math.sqrt`` are both correctly rounded, while ``pow(x, 0.5)`` is not
always.)  Leakage is restricted to models :func:`stack_proportional_leakage`
can vectorize; capacitors with any other model are rejected at construction
so callers fall back to the scalar engine for those lanes.

The per-capacitor :class:`~repro.capacitors.capacitor.EnergyLedger` totals
are accumulated as arrays and written back to the owning objects by
:meth:`writeback`, at which point the scalar and batched representations of
the lane are indistinguishable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.capacitors.capacitor import Capacitor
from repro.capacitors.leakage import stack_proportional_leakage


class CapacitorArray:
    """N independent single capacitors advanced in lockstep.

    Build instances with :meth:`from_capacitors`, which returns None when any
    capacitor's leakage model cannot be vectorized exactly.
    """

    def __init__(
        self,
        capacitors: Sequence[Capacitor],
        leak_rated_current: np.ndarray,
        leak_rated_voltage: np.ndarray,
    ) -> None:
        self.capacitors = list(capacitors)
        self.capacitance = np.array([cap.capacitance for cap in capacitors])
        self.rated_voltage = np.array([cap.rated_voltage for cap in capacitors])
        # Same expression the scalar path evaluates on every harvest call;
        # hoisting it is exact because the operands never change.
        self.max_energy = (
            0.5 * self.capacitance * self.rated_voltage * self.rated_voltage
        )
        self.charge = np.array([cap._charge for cap in capacitors])
        self.leak_rated_current = leak_rated_current
        self.leak_rated_voltage = leak_rated_voltage
        n = len(self.capacitors)
        self.absorbed = np.zeros(n)
        self.delivered = np.zeros(n)
        self.clipped = np.zeros(n)
        self.leaked = np.zeros(n)

    @classmethod
    def from_capacitors(
        cls, capacitors: Sequence[Capacitor]
    ) -> Optional["CapacitorArray"]:
        """Vectorized view over ``capacitors``, or None if one is unbatchable."""
        stacked = stack_proportional_leakage([cap.leakage for cap in capacitors])
        if stacked is None:
            return None
        return cls(capacitors, *stacked)

    def __len__(self) -> int:
        return len(self.capacitors)

    @property
    def voltage(self) -> np.ndarray:
        """Terminal voltages in volts (freshly computed from charge)."""
        return self.charge / self.capacitance

    def energy(self, voltage: np.ndarray) -> np.ndarray:
        """Stored energies for precomputed ``voltage`` (``1/2 C V^2``)."""
        return 0.5 * self.capacitance * voltage * voltage

    # -- lockstep updates ----------------------------------------------------

    def charge_with_energy(self, energy: np.ndarray) -> None:
        """Absorb per-lane harvested energy (joules), clipping at rating.

        Mirrors :meth:`Capacitor.charge_with_energy`, including its early
        return for zero offered energy: lanes whose ``energy`` is zero keep
        their charge bit-unchanged rather than passing through the
        energy→charge round trip.
        """
        active = energy > 0.0
        if not active.any():
            return
        capacitance = self.capacitance
        voltage = self.charge / capacitance
        present = 0.5 * capacitance * voltage * voltage
        new_energy = np.minimum(present + energy, self.max_energy)
        stored = np.where(active, new_energy - present, 0.0)
        self.absorbed += stored
        self.clipped += np.where(active, energy - stored, 0.0)
        self.charge = np.where(
            active, capacitance * np.sqrt(2.0 * new_energy / capacitance), self.charge
        )

    def discharge_current(self, current: np.ndarray, dt: np.ndarray) -> None:
        """Supply per-lane constant-current loads for per-lane ``dt`` seconds.

        Mirrors :meth:`Capacitor.discharge_current` with its default zero
        voltage floor (the power gate, not the capacitor, is what cuts the
        load off in the simulated systems).
        """
        capacitance = self.capacitance
        voltage = self.charge / capacitance
        before = 0.5 * capacitance * voltage * voltage
        new_charge = np.maximum(self.charge - current * dt, 0.0)
        self.charge = new_charge
        voltage = new_charge / capacitance
        self.delivered += before - 0.5 * capacitance * voltage * voltage

    def apply_leakage(self, dt: np.ndarray) -> np.ndarray:
        """Apply per-lane self-discharge; returns the energy each lane lost.

        Mirrors :meth:`Capacitor.apply_leakage` over the vectorized leakage
        form established by :func:`stack_proportional_leakage`.
        """
        capacitance = self.capacitance
        charge = self.charge
        voltage = charge / capacitance
        lost_charge = np.where(
            voltage > 0.0,
            self.leak_rated_current * (voltage / self.leak_rated_voltage) * dt,
            0.0,
        )
        lost_charge = np.minimum(lost_charge, charge)
        before = 0.5 * capacitance * voltage * voltage
        charge = charge - lost_charge
        self.charge = charge
        voltage = charge / capacitance
        leaked = before - 0.5 * capacitance * voltage * voltage
        self.leaked += leaked
        return leaked

    # -- lane management -----------------------------------------------------

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired lanes; ``keep`` is a boolean mask over current lanes."""
        self.capacitors = [cap for cap, k in zip(self.capacitors, keep) if k]
        self.capacitance = self.capacitance[keep]
        self.rated_voltage = self.rated_voltage[keep]
        self.max_energy = self.max_energy[keep]
        self.charge = self.charge[keep]
        self.leak_rated_current = self.leak_rated_current[keep]
        self.leak_rated_voltage = self.leak_rated_voltage[keep]
        self.absorbed = self.absorbed[keep]
        self.delivered = self.delivered[keep]
        self.clipped = self.clipped[keep]
        self.leaked = self.leaked[keep]

    def sync_charge(self, index: int) -> None:
        """Push lane ``index``'s charge into its capacitor object.

        Called before handing the owning buffer to Python code (workload
        steps observe buffer voltage/energy through the scalar object).
        """
        self.capacitors[index]._charge = float(self.charge[index])

    def sync_charges(self, indices: Sequence[int]) -> None:
        """Bulk :meth:`sync_charge` for every lane in ``indices``.

        One ``tolist`` materialization amortizes the numpy scalar-indexing
        cost across all powered lanes of a batch step.
        """
        charges = self.charge.tolist()
        capacitors = self.capacitors
        for index in indices:
            capacitors[index]._charge = charges[index]

    def writeback(self, index: int) -> None:
        """Write lane ``index``'s full state (charge + ledger) back."""
        cap = self.capacitors[index]
        cap._charge = float(self.charge[index])
        cap.ledger.absorbed += float(self.absorbed[index])
        cap.ledger.delivered += float(self.delivered[index])
        cap.ledger.clipped += float(self.clipped[index])
        cap.ledger.leaked += float(self.leaked[index])
