"""Electrical substrate: capacitors, leakage, diodes, switches, and networks.

This package models the analog components a REACT-style buffer is built
from.  Everything downstream (static buffers, Morphy, REACT itself) is
composed from these primitives, so their energy accounting is shared and
directly comparable.
"""

from repro.capacitors.capacitor import Capacitor, Supercapacitor
from repro.capacitors.leakage import (
    ConstantCurrentLeakage,
    LeakageModel,
    NoLeakage,
    VoltageProportionalLeakage,
)
from repro.capacitors.diode import Diode, IdealDiode, SchottkyDiode
from repro.capacitors.switches import BreakBeforeMakeSwitch, DpdtSwitch, SwitchState
from repro.capacitors.network import (
    equalize_parallel,
    parallel_capacitance,
    redistribute_charge,
    series_capacitance,
    transfer_energy_between,
)

__all__ = [
    "Capacitor",
    "Supercapacitor",
    "LeakageModel",
    "NoLeakage",
    "ConstantCurrentLeakage",
    "VoltageProportionalLeakage",
    "Diode",
    "IdealDiode",
    "SchottkyDiode",
    "SwitchState",
    "BreakBeforeMakeSwitch",
    "DpdtSwitch",
    "series_capacitance",
    "parallel_capacitance",
    "equalize_parallel",
    "redistribute_charge",
    "transfer_energy_between",
]
