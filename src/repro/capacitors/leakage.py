"""Capacitor leakage models.

The paper's evaluation hinges partly on leakage: large buffers lose more
harvested energy to leakage while the system sits below its enable voltage
("cold-start" energy), and partially-charged secondary buffers in
multiplexed designs leak energy that never powers work.  Datasheet leakage
figures are given at the rated voltage, so the default model scales the
leakage current proportionally with the present voltage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class LeakageModel(ABC):
    """Strategy interface: leakage current drawn at a given cell voltage."""

    @abstractmethod
    def current(self, voltage: float) -> float:
        """Leakage current in amperes at ``voltage`` volts."""

    def charge_lost(self, voltage: float, dt: float) -> float:
        """Charge in coulombs lost over a timestep of ``dt`` seconds."""
        return self.current(voltage) * dt


@dataclass(frozen=True)
class NoLeakage(LeakageModel):
    """An ideal, lossless capacitor.  Useful for analytic unit tests."""

    def current(self, voltage: float) -> float:
        return 0.0


@dataclass(frozen=True)
class ConstantCurrentLeakage(LeakageModel):
    """A fixed leakage current whenever any charge is stored."""

    leakage_current: float

    def __post_init__(self) -> None:
        if self.leakage_current < 0.0:
            raise ConfigurationError(
                f"leakage current must be non-negative, got {self.leakage_current}"
            )

    def current(self, voltage: float) -> float:
        if voltage <= 0.0:
            return 0.0
        return self.leakage_current


@dataclass(frozen=True)
class VoltageProportionalLeakage(LeakageModel):
    """Leakage current proportional to voltage (a parallel leakage resistance).

    Datasheets quote leakage at the rated voltage; this model linearly scales
    that figure with the operating voltage, which is the standard first-order
    model for ceramic and electrolytic capacitors.
    """

    rated_current: float
    rated_voltage: float

    def __post_init__(self) -> None:
        if self.rated_current < 0.0:
            raise ConfigurationError(
                f"rated leakage current must be non-negative, got {self.rated_current}"
            )
        if self.rated_voltage <= 0.0:
            raise ConfigurationError(
                f"rated voltage must be positive, got {self.rated_voltage}"
            )

    @property
    def equivalent_resistance(self) -> float:
        """The equivalent parallel leakage resistance in ohms."""
        if self.rated_current == 0.0:
            return float("inf")
        return self.rated_voltage / self.rated_current

    def current(self, voltage: float) -> float:
        if voltage <= 0.0:
            return 0.0
        return self.rated_current * (voltage / self.rated_voltage)


def stack_proportional_leakage(
    models: Sequence[LeakageModel],
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Stack per-lane leakage models into vectorizable parameter arrays.

    The batched simulation kernel advances many independent capacitors in
    lockstep, so each lane's leakage must reduce to the same closed form:
    ``charge_lost = rated_current * (voltage / rated_voltage) * dt`` for
    positive voltages.  :class:`VoltageProportionalLeakage` is exactly that,
    and :class:`NoLeakage` is the ``rated_current = 0`` degenerate case
    (``0.0 * (v / 1.0) * dt`` is exactly ``0.0``, matching the scalar model
    bit-for-bit).  Any other model type — including user subclasses, whose
    ``current`` may be arbitrary Python — returns None, which makes the
    owning buffer report :meth:`~repro.buffers.base.EnergyBuffer.can_batch`
    False so its lane falls back to the scalar engine.

    Returns ``(rated_currents, rated_voltages)`` float arrays, or None.
    """
    rated_currents = np.empty(len(models))
    rated_voltages = np.empty(len(models))
    for index, model in enumerate(models):
        if type(model) is VoltageProportionalLeakage:
            rated_currents[index] = model.rated_current
            rated_voltages[index] = model.rated_voltage
        elif type(model) is NoLeakage:
            rated_currents[index] = 0.0
            rated_voltages[index] = 1.0
        else:
            return None
    return rated_currents, rated_voltages
