"""Single-capacitor charge/energy model.

A :class:`Capacitor` tracks its stored charge and exposes charge, discharge,
and leakage operations with explicit energy accounting.  Every joule that
enters or leaves the component is attributed to one of:

* ``energy_absorbed`` — harvested energy actually stored,
* ``energy_delivered`` — energy handed to the load,
* ``energy_clipped`` — harvested energy discarded because the capacitor was
  at its rated voltage (the "burned off as heat" loss the paper describes
  for small static buffers),
* ``energy_leaked`` — energy lost to self-discharge.

These counters are what the end-to-end efficiency experiments (Table 2,
Figure 7) aggregate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.capacitors.leakage import LeakageModel, NoLeakage
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy


@dataclass
class EnergyLedger:
    """Cumulative energy accounting for a storage element."""

    absorbed: float = 0.0
    delivered: float = 0.0
    clipped: float = 0.0
    leaked: float = 0.0

    def merge(self, other: "EnergyLedger") -> None:
        """Accumulate another ledger into this one."""
        self.absorbed += other.absorbed
        self.delivered += other.delivered
        self.clipped += other.clipped
        self.leaked += other.leaked

    def as_dict(self) -> dict:
        return {
            "absorbed": self.absorbed,
            "delivered": self.delivered,
            "clipped": self.clipped,
            "leaked": self.leaked,
        }


@dataclass
class Capacitor:
    """An ideal capacitor with a rated voltage and a leakage model.

    Parameters
    ----------
    capacitance:
        Capacitance in farads.
    rated_voltage:
        Maximum voltage the part tolerates.  Charging beyond this level is
        clipped and the excess energy is recorded in the ledger.
    leakage:
        A :class:`~repro.capacitors.leakage.LeakageModel`; defaults to ideal.
    initial_voltage:
        Voltage at construction time, defaults to a fully discharged part.
    """

    capacitance: float
    rated_voltage: float = 6.3
    leakage: LeakageModel = field(default_factory=NoLeakage)
    initial_voltage: float = 0.0
    name: str = "cap"

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ConfigurationError(
                f"capacitance must be positive, got {self.capacitance}"
            )
        if self.rated_voltage <= 0.0:
            raise ConfigurationError(
                f"rated voltage must be positive, got {self.rated_voltage}"
            )
        if not 0.0 <= self.initial_voltage <= self.rated_voltage:
            raise ConfigurationError(
                "initial voltage must lie within [0, rated voltage], got "
                f"{self.initial_voltage}"
            )
        self._charge = self.capacitance * self.initial_voltage
        self.ledger = EnergyLedger()

    # -- state ------------------------------------------------------------

    @property
    def charge(self) -> float:
        """Stored charge in coulombs."""
        return self._charge

    @property
    def voltage(self) -> float:
        """Terminal voltage in volts."""
        return self._charge / self.capacitance

    @property
    def energy(self) -> float:
        """Stored energy in joules."""
        return capacitor_energy(self.capacitance, self.voltage)

    @property
    def max_charge(self) -> float:
        """Charge at the rated voltage."""
        return self.capacitance * self.rated_voltage

    @property
    def max_energy(self) -> float:
        """Energy at the rated voltage."""
        return capacitor_energy(self.capacitance, self.rated_voltage)

    @property
    def headroom_energy(self) -> float:
        """Additional energy the capacitor can absorb before clipping."""
        return self.max_energy - self.energy

    def is_full(self, margin: float = 1e-9) -> bool:
        """True when the capacitor is at (or within ``margin`` volts of) rating."""
        return self.voltage >= self.rated_voltage - margin

    # -- charge manipulation ------------------------------------------------

    def set_voltage(self, voltage: float) -> None:
        """Force the terminal voltage (used for test setup, not simulation)."""
        if not 0.0 <= voltage <= self.rated_voltage:
            raise ConfigurationError(
                f"voltage {voltage} outside [0, {self.rated_voltage}]"
            )
        self._charge = self.capacitance * voltage

    def charge_with_energy(self, energy: float) -> float:
        """Absorb ``energy`` joules from the harvester.

        Returns the energy actually stored; the rest is clipped (recorded as
        overvoltage waste).  Energy-domain charging models a regulated
        harvester front-end that delivers power rather than raw current.
        """
        if energy < 0.0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        if energy == 0.0:
            return 0.0
        # Inlined self.energy / self.max_energy (hot path: once per
        # simulation step for every capacitor behind the harvester).
        capacitance = self.capacitance
        voltage = self._charge / capacitance
        present = 0.5 * capacitance * voltage * voltage
        rated = self.rated_voltage
        max_energy = 0.5 * capacitance * rated * rated
        new_energy = present + energy
        if new_energy > max_energy:
            new_energy = max_energy
        stored = new_energy - present
        clipped = energy - stored
        # math.sqrt rather than ``** 0.5``: both are one libm call, but sqrt
        # is correctly rounded while pow is not always, and the batched
        # (numpy) kernels must reproduce this trajectory bit-for-bit.
        self._charge = capacitance * math.sqrt(2.0 * new_energy / capacitance)
        self.ledger.absorbed += stored
        self.ledger.clipped += clipped
        return stored

    def charge_with_current(self, current: float, dt: float) -> float:
        """Absorb charge from a current source for ``dt`` seconds.

        Returns the energy actually stored.  Charge beyond the rated voltage
        is clipped; the clipped energy is valued at the rated voltage, which
        is what a shunt overvoltage-protection circuit dissipates.
        """
        if current < 0.0:
            raise ValueError(f"current must be non-negative, got {current}")
        before_energy = self.energy
        new_charge = self._charge + current * dt
        clipped_charge = max(0.0, new_charge - self.max_charge)
        self._charge = min(new_charge, self.max_charge)
        stored = self.energy - before_energy
        self.ledger.absorbed += stored
        self.ledger.clipped += clipped_charge * self.rated_voltage
        return stored

    def discharge_current(
        self, current: float, dt: float, v_floor: float = 0.0
    ) -> float:
        """Supply a constant-current load for ``dt`` seconds.

        The discharge stops at ``v_floor`` (e.g. the brown-out voltage when
        the capacitor directly supplies an unregulated MCU).  Returns the
        energy delivered to the load.
        """
        if current < 0.0:
            raise ValueError(f"current must be non-negative, got {current}")
        # Inlined self.energy lookups (hot path: once per simulation step).
        capacitance = self.capacitance
        floor_charge = capacitance * max(v_floor, 0.0)
        voltage = self._charge / capacitance
        before_energy = 0.5 * capacitance * voltage * voltage
        new_charge = max(self._charge - current * dt, floor_charge)
        self._charge = new_charge
        voltage = new_charge / capacitance
        delivered = before_energy - 0.5 * capacitance * voltage * voltage
        self.ledger.delivered += delivered
        return delivered

    def discharge_energy(self, energy: float, v_floor: float = 0.0) -> float:
        """Remove up to ``energy`` joules, not dropping below ``v_floor``.

        Returns the energy actually delivered.
        """
        if energy < 0.0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        floor_energy = capacitor_energy(self.capacitance, max(v_floor, 0.0))
        available = max(0.0, self.energy - floor_energy)
        delivered = min(energy, available)
        new_energy = self.energy - delivered
        self._charge = math.sqrt(2.0 * new_energy * self.capacitance)
        self.ledger.delivered += delivered
        return delivered

    def apply_leakage(self, dt: float) -> float:
        """Apply self-discharge over ``dt`` seconds; returns energy lost."""
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        # Inlined self.voltage / self.energy (hot path: once per step).
        capacitance = self.capacitance
        charge = self._charge
        voltage = charge / capacitance
        lost_charge = min(self.leakage.charge_lost(voltage, dt), charge)
        before_energy = 0.5 * capacitance * voltage * voltage
        charge -= lost_charge
        self._charge = charge
        voltage = charge / capacitance
        leaked = before_energy - 0.5 * capacitance * voltage * voltage
        self.ledger.leaked += leaked
        return leaked

    def reset(self, voltage: float = 0.0) -> None:
        """Reset stored charge and the energy ledger (new experiment run)."""
        self.set_voltage(voltage)
        self.ledger = EnergyLedger()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"{type(self).__name__}(name={self.name!r}, C={self.capacitance:.6g} F, "
            f"V={self.voltage:.3f} V)"
        )


class Supercapacitor(Capacitor):
    """A supercapacitor: identical electrical model, lower default leakage.

    The distinction matters for REACT's largest bank (Table 1 bank 5), which
    uses supercapacitors whose leakage is orders of magnitude below the
    ceramic parts used elsewhere.
    """
