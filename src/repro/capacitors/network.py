"""Capacitor-network math: combination rules and charge redistribution.

The central physical fact behind REACT's design (§3.3.1) is that connecting
charged capacitors at different voltages in parallel dissipates energy:
charge is conserved, so the equalized voltage is the charge-weighted mean,
and the quadratic energy of the combination is strictly below the sum of the
parts whenever the initial voltages differ.  Morphy pays this cost on every
reconfiguration; REACT's isolated banks never connect capacitors at
different potentials and therefore avoid it.

The functions here implement that math once so both buffer models and the
analytic experiments (`experiments/switching_loss.py`) share it.
"""

from __future__ import annotations

import math

from typing import Iterable, Sequence, Tuple

from repro.units import capacitor_energy


def series_capacitance(capacitances: Iterable[float]) -> float:
    """Equivalent capacitance of capacitors in series."""
    inverse = 0.0
    count = 0
    for value in capacitances:
        if value <= 0.0:
            raise ValueError(f"capacitance must be positive, got {value}")
        inverse += 1.0 / value
        count += 1
    if count == 0:
        raise ValueError("at least one capacitor is required")
    return 1.0 / inverse


def parallel_capacitance(capacitances: Iterable[float]) -> float:
    """Equivalent capacitance of capacitors in parallel."""
    total = 0.0
    count = 0
    for value in capacitances:
        if value <= 0.0:
            raise ValueError(f"capacitance must be positive, got {value}")
        total += value
        count += 1
    if count == 0:
        raise ValueError("at least one capacitor is required")
    return total


def equalize_parallel(
    capacitances: Sequence[float], voltages: Sequence[float]
) -> Tuple[float, float]:
    """Connect capacitors in parallel and let their voltages equalize.

    Returns ``(final_voltage, energy_dissipated)``.  Charge is conserved;
    the dissipated energy is the difference between the initial and final
    stored energy, which in a real circuit is burned in the switch and wire
    resistance during the equalizing current spike.
    """
    if len(capacitances) != len(voltages):
        raise ValueError("capacitances and voltages must have the same length")
    if not capacitances:
        raise ValueError("at least one capacitor is required")
    total_charge = 0.0
    total_capacitance = 0.0
    initial_energy = 0.0
    for capacitance, voltage in zip(capacitances, voltages):
        if capacitance <= 0.0:
            raise ValueError(f"capacitance must be positive, got {capacitance}")
        total_charge += capacitance * voltage
        total_capacitance += capacitance
        initial_energy += capacitor_energy(capacitance, voltage)
    final_voltage = total_charge / total_capacitance
    final_energy = capacitor_energy(total_capacitance, final_voltage)
    dissipated = initial_energy - final_energy
    return final_voltage, max(dissipated, 0.0)


def redistribute_charge(
    source_capacitance: float,
    source_voltage: float,
    sink_capacitance: float,
    sink_voltage: float,
) -> Tuple[float, float]:
    """Connect a charged source capacitor across a sink and equalize.

    Returns ``(final_voltage, energy_dissipated)``.  This is the two-element
    special case of :func:`equalize_parallel`, kept separate because it is
    the expression used in Equation 1 of the paper (bank output switched
    onto the last-level buffer).
    """
    return equalize_parallel(
        [source_capacitance, sink_capacitance], [source_voltage, sink_voltage]
    )


def transfer_energy_between(
    source_capacitance: float,
    source_voltage: float,
    sink_capacitance: float,
    sink_voltage: float,
    max_energy: float = float("inf"),
) -> Tuple[float, float, float]:
    """Move charge from a higher-voltage source to a lower-voltage sink.

    Models diode-gated replenishment of the last-level buffer from a bank:
    charge flows only while the source is above the sink and stops either at
    equalization or once ``max_energy`` joules have left the source.

    Returns ``(new_source_voltage, new_sink_voltage, energy_into_sink)``.
    """
    if source_voltage <= sink_voltage:
        return source_voltage, sink_voltage, 0.0
    # Full equalization end-point.
    equal_voltage, _ = redistribute_charge(
        source_capacitance, source_voltage, sink_capacitance, sink_voltage
    )
    # Energy the source would give up at full equalization.
    source_energy_drop = capacitor_energy(
        source_capacitance, source_voltage
    ) - capacitor_energy(source_capacitance, equal_voltage)
    if source_energy_drop <= max_energy:
        sink_gain = capacitor_energy(
            sink_capacitance, equal_voltage
        ) - capacitor_energy(sink_capacitance, sink_voltage)
        return equal_voltage, equal_voltage, max(sink_gain, 0.0)
    # Partial transfer: remove max_energy from the source, add the charge
    # (minus the voltage-difference dissipation) to the sink.  We conserve
    # charge: dq leaves the source at its falling voltage and lands on the
    # sink at its rising voltage.
    new_source_energy = (
        capacitor_energy(source_capacitance, source_voltage) - max_energy
    )
    new_source_voltage = math.sqrt(2.0 * new_source_energy / source_capacitance)
    charge_moved = source_capacitance * (source_voltage - new_source_voltage)
    new_sink_voltage = min(
        sink_voltage + charge_moved / sink_capacitance, new_source_voltage
    )
    sink_gain = capacitor_energy(sink_capacitance, new_sink_voltage) - capacitor_energy(
        sink_capacitance, sink_voltage
    )
    return new_source_voltage, new_sink_voltage, max(sink_gain, 0.0)
