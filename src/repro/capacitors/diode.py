"""Diode models used for bank isolation.

REACT isolates its capacitor banks with *ideal diode* circuits (an LM66100-
style comparator plus pass transistor) rather than PN or Schottky diodes,
because at the sub-milliamp currents typical of batteryless systems the
forward drop of a passive diode wastes a meaningful fraction of harvested
power.  The models below expose that difference so the ablation benchmarks
can quantify it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


class Diode(ABC):
    """One-way conduction element with a (possibly zero) power loss."""

    @abstractmethod
    def forward_drop(self, current: float) -> float:
        """Forward voltage drop in volts at ``current`` amperes."""

    def conducts(self, v_anode: float, v_cathode: float) -> bool:
        """True when the diode conducts for the given terminal voltages.

        The threshold is evaluated at a representative 1 mA forward current,
        the operating point the paper uses to compare diode losses.
        """
        return v_anode > v_cathode + self.forward_drop(1e-3)

    def power_loss(self, current: float) -> float:
        """Power dissipated in the diode at ``current`` amperes."""
        if current <= 0.0:
            return 0.0
        return self.forward_drop(current) * current

    def transfer_efficiency(self, current: float, supply_voltage: float) -> float:
        """Fraction of power surviving conduction at a given supply voltage."""
        if supply_voltage <= 0.0 or current <= 0.0:
            return 1.0
        drop = self.forward_drop(current)
        if drop >= supply_voltage:
            return 0.0
        return 1.0 - drop / supply_voltage


@dataclass(frozen=True)
class IdealDiode(Diode):
    """Active ideal-diode circuit (comparator + pass FET).

    Modeled as a small on-resistance plus the quiescent current of the
    comparator.  With the LM66100-style circuit the paper uses, the loss at
    1 mA is roughly 0.02 % of a Schottky diode's.
    """

    on_resistance: float = 0.079
    quiescent_current: float = 0.25e-6

    def __post_init__(self) -> None:
        if self.on_resistance < 0.0:
            raise ConfigurationError(
                f"on-resistance must be non-negative, got {self.on_resistance}"
            )
        if self.quiescent_current < 0.0:
            raise ConfigurationError(
                f"quiescent current must be non-negative, got {self.quiescent_current}"
            )

    def forward_drop(self, current: float) -> float:
        if current <= 0.0:
            return 0.0
        return current * self.on_resistance

    def power_loss(self, current: float) -> float:
        conduction = super().power_loss(current)
        # The comparator draws its quiescent current from a ~3 V rail.
        return conduction + self.quiescent_current * 3.0


@dataclass(frozen=True)
class SchottkyDiode(Diode):
    """Passive Schottky diode with a fixed forward drop.

    Used only as a baseline in the isolation-efficiency ablation; REACT's
    design explicitly avoids it.
    """

    drop: float = 0.34

    def __post_init__(self) -> None:
        if self.drop < 0.0:
            raise ConfigurationError(
                f"forward drop must be non-negative, got {self.drop}"
            )

    def forward_drop(self, current: float) -> float:
        if current <= 0.0:
            return 0.0
        return self.drop
