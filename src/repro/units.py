"""Unit helpers and physical constants used across the library.

All internal quantities use SI base units: volts, amperes, farads, joules,
watts, seconds.  The helpers below exist so that configuration code can be
written in the units the paper uses (microfarads, millifarads, milliwatts,
microamps) without sprinkling powers of ten through the codebase.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Multiplicative prefixes
# ---------------------------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
KILO = 1e3


def microfarads(value: float) -> float:
    """Convert a value expressed in microfarads to farads."""
    return value * MICRO


def millifarads(value: float) -> float:
    """Convert a value expressed in millifarads to farads."""
    return value * MILLI


def milliamps(value: float) -> float:
    """Convert a value expressed in milliamps to amperes."""
    return value * MILLI


def microamps(value: float) -> float:
    """Convert a value expressed in microamps to amperes."""
    return value * MICRO


def milliwatts(value: float) -> float:
    """Convert a value expressed in milliwatts to watts."""
    return value * MILLI


def microwatts(value: float) -> float:
    """Convert a value expressed in microwatts to watts."""
    return value * MICRO


def millijoules(value: float) -> float:
    """Convert a value expressed in millijoules to joules."""
    return value * MILLI


def to_millijoules(joules: float) -> float:
    """Convert joules to millijoules for reporting."""
    return joules / MILLI


def to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts for reporting."""
    return watts / MILLI


def next_grid_time(time: float, period: float) -> float:
    """The next exact multiple of ``period`` strictly after ``time``.

    The snap-to-grid rule shared by every fixed-rate schedule in the
    simulator (recorder decimation, the Morphy controller's 10 Hz poll):
    anchoring the next event on the period grid rather than ``time +
    period`` keeps the schedule from drifting with the simulation step
    size.  Guards the floating-point edge where ``time`` sits exactly on a
    grid point whose quotient floored low (e.g. ``4.3 / 0.1 == 42.999…``),
    which would otherwise return ``time`` itself and fire the schedule
    twice in one period.

    :meth:`repro.buffers.morphy_batch.MorphyBatchKernel.housekeeping`
    mirrors this expression elementwise over lane arrays; any change here
    must be reflected there (the Morphy batch/scalar bit-equality tests
    pin the pairing).
    """
    next_time = (math.floor(time / period) + 1.0) * period
    if next_time <= time:
        next_time += period
    return next_time


def capacitor_energy(capacitance: float, voltage: float) -> float:
    """Energy stored on an ideal capacitor: ``E = 1/2 C V^2``."""
    return 0.5 * capacitance * voltage * voltage


def capacitor_voltage(capacitance: float, charge: float) -> float:
    """Voltage across an ideal capacitor holding ``charge`` coulombs."""
    if capacitance <= 0.0:
        raise ValueError(f"capacitance must be positive, got {capacitance}")
    return charge / capacitance


def capacitor_charge(capacitance: float, voltage: float) -> float:
    """Charge stored on an ideal capacitor at ``voltage`` volts."""
    return capacitance * voltage


def usable_energy(capacitance: float, v_high: float, v_low: float) -> float:
    """Energy extractable from a capacitor between two voltage levels.

    This is the quantity batteryless designers size buffers by: the energy
    available while the supply stays within the operating window
    ``[v_low, v_high]``.
    """
    if v_high < v_low:
        raise ValueError(f"v_high ({v_high}) must be >= v_low ({v_low})")
    return 0.5 * capacitance * (v_high * v_high - v_low * v_low)
