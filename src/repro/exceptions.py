"""Exception hierarchy for the REACT reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with physically or logically invalid values."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class TraceError(ReproError):
    """A power trace could not be loaded, generated, or validated."""


class BankStateError(ReproError):
    """An illegal capacitor-bank state transition was requested."""


class WorkloadError(ReproError):
    """A workload was driven through an invalid sequence of operations."""
