"""Exception hierarchy for the REACT reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with physically or logically invalid values."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class TraceError(ReproError):
    """A power trace could not be loaded, generated, or validated."""


class BankStateError(ReproError):
    """An illegal capacitor-bank state transition was requested."""


class WorkloadError(ReproError):
    """A workload was driven through an invalid sequence of operations."""


class SweepTransportError(ReproError):
    """A distributed sweep could not be completed by the remote transport.

    Raised by the remote coordinator when a shard exhausts its retry budget
    (every dispatch died, stalled, or failed) or when no workers ever
    connect — always with the affected spec indices in the message, so a
    failed sweep names *what* is missing instead of hanging.
    """
