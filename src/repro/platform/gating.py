"""Hysteretic power gating between the buffer and the computational backend.

Every buffer configuration in the paper sits behind an intermediate circuit
that connects the MSP430 once the buffer reaches 3.3 V and disconnects it
when the buffer falls to 1.8 V.  The gate is the component that turns a
continuous voltage timeline into the familiar intermittent-computing on/off
bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass
class PowerGate:
    """A comparator-based hysteretic switch.

    Parameters
    ----------
    enable_voltage:
        Buffer voltage at which the load is connected (3.3 V in the paper's
        testbed).
    brownout_voltage:
        Buffer voltage at which the load is disconnected (1.8 V).
    quiescent_current:
        Always-on current of the comparator/supervisor itself.
    """

    enable_voltage: float = 3.3
    brownout_voltage: float = 1.8
    quiescent_current: float = 0.4e-6
    enabled: bool = field(default=False, init=False)
    enable_count: int = field(default=0, init=False)
    brownout_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.brownout_voltage <= 0.0:
            raise ConfigurationError("brown-out voltage must be positive")
        if self.enable_voltage <= self.brownout_voltage:
            raise ConfigurationError(
                "enable voltage must exceed the brown-out voltage "
                f"({self.enable_voltage} <= {self.brownout_voltage})"
            )
        if self.quiescent_current < 0.0:
            raise ConfigurationError("quiescent current must be non-negative")

    def update(self, voltage: float) -> bool:
        """Update the gate for the present buffer voltage.

        Returns True when the load is connected after the update.
        """
        if not self.enabled and voltage >= self.enable_voltage:
            self.enabled = True
            self.enable_count += 1
        elif self.enabled and voltage <= self.brownout_voltage:
            self.enabled = False
            self.brownout_count += 1
        return self.enabled

    def reset(self) -> None:
        """Return to the cold-start (disconnected) state."""
        self.enabled = False
        self.enable_count = 0
        self.brownout_count = 0
