"""Microcontroller power model.

The testbed MCU is an MSP430FR5994 power-gated directly from the energy
buffer (no regulator), so its load on the buffer is well approximated by a
mode-dependent current draw.  The model tracks time spent in each mode and
total charge drawn, which feeds the overhead characterization experiment
(§5.1) and the end-to-end efficiency metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from repro.exceptions import ConfigurationError
from repro.units import microamps, milliamps


class PowerMode(Enum):
    """Operating mode of the microcontroller.

    ``SLEEP`` is the platform's *idle* state between bursts of work: the
    wake timer, supervision, and benchmark peripherals remain biased, so it
    draws two orders of magnitude more than ``DEEP_SLEEP``, the
    wait-for-energy state longevity-aware software parks in while the
    buffer charges (§3.4.1).
    """

    OFF = "off"
    DEEP_SLEEP = "deep_sleep"
    SLEEP = "sleep"
    ACTIVE = "active"


@dataclass
class Microcontroller:
    """A power-gated microcontroller with mode-dependent current draw.

    Parameters
    ----------
    active_current:
        Supply current while executing code (amperes).
    sleep_current:
        Supply current in the low-power (LPM3-style) sleep mode with a wake
        timer running.
    off_current:
        Residual current when the power gate has disconnected the MCU
        (essentially the gate's own leakage).
    """

    name: str = "mcu"
    active_current: float = milliamps(1.5)
    sleep_current: float = microamps(2.0)
    deep_sleep_current: float = microamps(2.0)
    off_current: float = 0.0
    mode: PowerMode = PowerMode.OFF
    time_in_mode: Dict[PowerMode, float] = field(default_factory=dict)
    charge_drawn: float = field(default=0.0, init=False)
    wakeup_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        for label, value in (
            ("active", self.active_current),
            ("sleep", self.sleep_current),
            ("deep sleep", self.deep_sleep_current),
            ("off", self.off_current),
        ):
            if value < 0.0:
                raise ConfigurationError(f"{label} current must be non-negative")
        if self.sleep_current > self.active_current:
            raise ConfigurationError("sleep current cannot exceed active current")
        if self.deep_sleep_current > self.sleep_current:
            raise ConfigurationError("deep-sleep current cannot exceed sleep current")
        if not self.time_in_mode:
            self.time_in_mode = {mode: 0.0 for mode in PowerMode}

    # -- mode management ------------------------------------------------------

    def set_mode(self, mode: PowerMode) -> None:
        """Change operating mode (counts OFF→non-OFF transitions as wakeups)."""
        if mode is self.mode:
            return
        if self.mode is PowerMode.OFF and mode is not PowerMode.OFF:
            self.wakeup_count += 1
        self.mode = mode

    def power_off(self) -> None:
        """The power gate disconnected the MCU (brown-out or cold start)."""
        self.mode = PowerMode.OFF

    @property
    def is_on(self) -> bool:
        """True when the MCU is powered (active or in either sleep mode)."""
        return self.mode is not PowerMode.OFF

    # -- electrical ------------------------------------------------------------

    def current(self, mode: PowerMode | None = None) -> float:
        """Supply current in amperes for ``mode`` (defaults to current mode)."""
        mode = mode or self.mode
        if mode is PowerMode.ACTIVE:
            return self.active_current
        if mode is PowerMode.SLEEP:
            return self.sleep_current
        if mode is PowerMode.DEEP_SLEEP:
            return self.deep_sleep_current
        return self.off_current

    def step(self, dt: float) -> float:
        """Advance time by ``dt`` seconds in the present mode.

        Returns the current drawn this step (amperes) and updates the
        per-mode time and cumulative charge accounting.
        """
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        current = self.current()
        self.time_in_mode[self.mode] = self.time_in_mode.get(self.mode, 0.0) + dt
        self.charge_drawn += current * dt
        return current

    # -- reporting ---------------------------------------------------------------

    @property
    def on_time(self) -> float:
        """Total seconds spent powered (active + sleep + deep sleep)."""
        return (
            self.time_in_mode.get(PowerMode.ACTIVE, 0.0)
            + self.time_in_mode.get(PowerMode.SLEEP, 0.0)
            + self.time_in_mode.get(PowerMode.DEEP_SLEEP, 0.0)
        )

    @property
    def active_time(self) -> float:
        """Total seconds spent in active mode."""
        return self.time_in_mode.get(PowerMode.ACTIVE, 0.0)

    def reset(self) -> None:
        """Clear mode history for a new simulation run."""
        self.mode = PowerMode.OFF
        self.time_in_mode = {mode: 0.0 for mode in PowerMode}
        self.charge_drawn = 0.0
        self.wakeup_count = 0


def MSP430FR5994(
    active_current: float = milliamps(1.5),
    sleep_current: float = microamps(150.0),
    deep_sleep_current: float = microamps(4.0),
) -> Microcontroller:
    """Factory for the testbed MCU with deployment-flavoured defaults.

    The active current default (1.5 mA) matches the representative
    deployment the paper uses for its Figure 1 analysis.  The sleep current
    is the *platform* idle draw, not the bare LPM3 figure from the MSP430
    datasheet: it folds in the wake timer, voltage supervision, and the
    biased benchmark peripherals that remain powered between bursts of
    work, which is what makes harvested power a deficit during the
    low-power stretches of the evaluation traces (and therefore produces
    the intermittent on/off cycling the paper's Figure 6 shows).  Pass a
    smaller value to model a more aggressively duty-cycled platform.
    """
    return Microcontroller(
        name="MSP430FR5994",
        active_current=active_current,
        sleep_current=sleep_current,
        deep_sleep_current=deep_sleep_current,
        off_current=0.0,
    )
