"""Computational backend: microcontroller, peripherals, gating, and events.

Models the MSP430FR5994-class platform the paper integrates REACT into: a
power-gated microcontroller with active/sleep/off modes, peripherals whose
current draw is emulated per benchmark, a hysteretic power gate (enable at
3.3 V, brown-out at 1.8 V), the two-comparator voltage instrumentation REACT
uses to sense its buffer, and the external event sources (sensor deadlines,
incoming packets) that drive the reactivity-bound workloads.
"""

from repro.platform.mcu import Microcontroller, PowerMode, MSP430FR5994
from repro.platform.peripherals import (
    Microphone,
    Peripheral,
    Radio,
    RadioOperation,
)
from repro.platform.gating import PowerGate
from repro.platform.monitor import BufferSignal, VoltageMonitor
from repro.platform.events import (
    Event,
    EventSource,
    PeriodicEventSource,
    PoissonEventSource,
)

__all__ = [
    "PowerMode",
    "Microcontroller",
    "MSP430FR5994",
    "Peripheral",
    "Radio",
    "RadioOperation",
    "Microphone",
    "PowerGate",
    "VoltageMonitor",
    "BufferSignal",
    "Event",
    "EventSource",
    "PeriodicEventSource",
    "PoissonEventSource",
]
