"""Peripheral power models (radio, microphone).

The paper emulates each benchmark's peripherals by switching a resistor
sized to match the relevant part's datasheet current.  We model the same
thing directly: a peripheral contributes a current draw while it is in use
and exposes the energy cost of its atomic operations so workloads can make
longevity decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ConfigurationError
from repro.units import milliamps


@dataclass
class Peripheral:
    """A generic peripheral with an on/off current draw."""

    name: str
    active_current: float
    idle_current: float = 0.0
    in_use: bool = field(default=False, init=False)
    time_in_use: float = field(default=0.0, init=False)
    charge_drawn: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.active_current < 0.0 or self.idle_current < 0.0:
            raise ConfigurationError("peripheral currents must be non-negative")

    def current(self) -> float:
        """Present current draw in amperes."""
        return self.active_current if self.in_use else self.idle_current

    def step(self, dt: float) -> float:
        """Advance time; returns the current drawn during this step."""
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        current = self.current()
        if self.in_use:
            self.time_in_use += dt
        self.charge_drawn += current * dt
        return current

    def reset(self) -> None:
        """Clear usage accounting for a new simulation run."""
        self.in_use = False
        self.time_in_use = 0.0
        self.charge_drawn = 0.0


class RadioOperation(Enum):
    """Which half of the link the radio is currently exercising."""

    IDLE = "idle"
    RECEIVE = "receive"
    TRANSMIT = "transmit"


@dataclass
class Radio:
    """A sub-GHz low-power transceiver (ZL70251/RFicient class).

    Transmissions and receptions are *atomic*: they take a fixed wall-clock
    time at a fixed current, and deliver nothing if the supply browns out
    before they complete.  The energy figures below (current × a nominal
    3 V supply × duration) are what longevity-aware software reserves
    against.
    """

    name: str = "radio"
    transmit_current: float = milliamps(8.0)
    receive_current: float = milliamps(5.0)
    idle_current: float = 0.0
    transmit_time: float = 0.15
    receive_time: float = 0.10
    nominal_voltage: float = 3.0
    operation: RadioOperation = field(default=RadioOperation.IDLE, init=False)
    time_transmitting: float = field(default=0.0, init=False)
    time_receiving: float = field(default=0.0, init=False)
    charge_drawn: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        for label, value in (
            ("transmit current", self.transmit_current),
            ("receive current", self.receive_current),
            ("idle current", self.idle_current),
            ("transmit time", self.transmit_time),
            ("receive time", self.receive_time),
        ):
            if value < 0.0:
                raise ConfigurationError(f"{label} must be non-negative")

    # -- energy planning ---------------------------------------------------------

    @property
    def transmit_energy(self) -> float:
        """Approximate energy of one full transmission, in joules."""
        return self.transmit_current * self.nominal_voltage * self.transmit_time

    @property
    def receive_energy(self) -> float:
        """Approximate energy of one full reception window, in joules."""
        return self.receive_current * self.nominal_voltage * self.receive_time

    # -- operation ------------------------------------------------------------------

    def current(self) -> float:
        """Present current draw in amperes."""
        if self.operation is RadioOperation.TRANSMIT:
            return self.transmit_current
        if self.operation is RadioOperation.RECEIVE:
            return self.receive_current
        return self.idle_current

    def step(self, dt: float) -> float:
        """Advance time; returns the current drawn during this step."""
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        current = self.current()
        if self.operation is RadioOperation.TRANSMIT:
            self.time_transmitting += dt
        elif self.operation is RadioOperation.RECEIVE:
            self.time_receiving += dt
        self.charge_drawn += current * dt
        return current

    def reset(self) -> None:
        """Clear usage accounting for a new simulation run."""
        self.operation = RadioOperation.IDLE
        self.time_transmitting = 0.0
        self.time_receiving = 0.0
        self.charge_drawn = 0.0


def Microphone() -> Peripheral:
    """A low-power MEMS microphone (SPU0414HR5H class, ~230 µA active)."""
    return Peripheral(name="microphone", active_current=230e-6, idle_current=0.0)
