"""Voltage instrumentation: REACT's two-comparator buffer-state monitor.

REACT only needs to distinguish three buffer states — near capacity, near
under-voltage, and OK — so its instrumentation is two low-power comparators
watching the last-level buffer (§3.2.1).  The monitor's output is what the
software controller polls at its (10 Hz by default) sampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ConfigurationError


class BufferSignal(Enum):
    """Discrete buffer-state signal produced by the voltage instrumentation."""

    OK = "ok"
    NEAR_FULL = "near_full"
    NEAR_EMPTY = "near_empty"


@dataclass
class VoltageMonitor:
    """Two-threshold comparator pair with a small quiescent draw.

    Parameters
    ----------
    high_threshold:
        Voltage above which the buffer is reported near capacity (the paper
        uses 3.5 V, just below the 3.6 V overvoltage-protection point).
    low_threshold:
        Voltage below which the buffer is reported near empty (set above the
        1.8 V brown-out point so the controller can react before the system
        loses power).
    """

    high_threshold: float = 3.5
    low_threshold: float = 2.0
    quiescent_current: float = 0.7e-6
    last_signal: BufferSignal = field(default=BufferSignal.OK, init=False)

    def __post_init__(self) -> None:
        if self.low_threshold <= 0.0:
            raise ConfigurationError("low threshold must be positive")
        if self.high_threshold <= self.low_threshold:
            raise ConfigurationError(
                "high threshold must exceed low threshold "
                f"({self.high_threshold} <= {self.low_threshold})"
            )
        if self.quiescent_current < 0.0:
            raise ConfigurationError("quiescent current must be non-negative")

    def sample(self, voltage: float) -> BufferSignal:
        """Classify the present buffer voltage into one of the three signals."""
        if voltage >= self.high_threshold:
            signal = BufferSignal.NEAR_FULL
        elif voltage <= self.low_threshold:
            signal = BufferSignal.NEAR_EMPTY
        else:
            signal = BufferSignal.OK
        self.last_signal = signal
        return signal

    def reset(self) -> None:
        """Clear the latched signal."""
        self.last_signal = BufferSignal.OK
