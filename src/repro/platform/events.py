"""External event sources for reactivity-bound workloads.

The Sense-and-Compute benchmark has a sensing deadline every five seconds;
the Packet-Forwarding benchmark receives packets at unpredictable times from
other nodes.  Both kinds of event may arrive while the system is powered
off, in which case the event is lost — that is precisely why reactivity
(charge time) matters.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Event:
    """A single external event (a deadline or an incoming packet)."""

    time: float
    kind: str = "event"
    payload_size: int = 0


class EventSource(ABC):
    """Produces events over simulated time."""

    @abstractmethod
    def events_between(self, start: float, end: float) -> List[Event]:
        """Events with ``start <= time < end`` in chronological order."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the source to its initial state."""


@dataclass
class PeriodicEventSource(EventSource):
    """Deadlines at a fixed period (the SC benchmark's 5-second sampling)."""

    period: float = 5.0
    kind: str = "deadline"
    phase: float = 0.0
    _emitted_up_to: float = field(default=0.0, init=False)
    _scan_from: float = field(default=0.0, init=False)
    _next_event_time: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.phase < 0.0:
            raise ConfigurationError(f"phase must be non-negative, got {self.phase}")
        self._next_event_time = self.phase

    @property
    def next_fire_time(self) -> float:
        """Earliest event time not yet delivered to a monotone consumer.

        For the monotone window sequence a simulation produces this is the
        first deadline at or after the end of the last
        :meth:`events_between` window — the value workload quiescence
        hints are built from.  Exact on the period grid: the cached cursor
        is refreshed on every slow-path query and remains valid across the
        empty-interval fast path (which only advances windows that end
        before it).
        """
        return self._next_event_time

    def events_between(self, start: float, end: float) -> List[Event]:
        if end <= start:
            return []
        # Simulation queries advance monotonically over contiguous windows
        # and the next deadline is usually seconds away, so the overwhelmingly
        # common case is "no deadline in this step".  The cached next event
        # time answers it with one comparison; any query that reaches or
        # rewinds past the cache falls through to the exact index arithmetic.
        if end <= self._next_event_time and start >= self._scan_from:
            self._scan_from = end
            if end > self._emitted_up_to:
                self._emitted_up_to = end
            return []
        first_index = math.ceil((start - self.phase) / self.period)
        first_index = max(first_index, 0)
        events: List[Event] = []
        index = first_index
        while True:
            time = self.phase + index * self.period
            if time >= end:
                break
            if time >= start:
                events.append(Event(time=time, kind=self.kind))
            index += 1
        self._scan_from = end
        self._next_event_time = self.phase + index * self.period
        self._emitted_up_to = max(self._emitted_up_to, end)
        return events

    def reset(self) -> None:
        self._emitted_up_to = 0.0
        self._scan_from = 0.0
        self._next_event_time = self.phase


@dataclass
class PoissonEventSource(EventSource):
    """Memoryless random arrivals (the PF benchmark's incoming packets).

    Arrival times are drawn once, lazily, from a seeded generator so the
    same source replayed twice produces the same packet schedule —
    repeatability is as important for events as it is for power traces.
    """

    mean_interarrival: float = 6.0
    horizon: float = 7200.0
    kind: str = "packet"
    payload_size: int = 16
    seed: int = 0
    _times: np.ndarray = field(default=None, init=False, repr=False)
    _times_list: List[float] = field(default=None, init=False, repr=False)
    _cursor: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0.0:
            raise ConfigurationError("mean interarrival must be positive")
        if self.horizon <= 0.0:
            raise ConfigurationError("horizon must be positive")
        self._generate()

    def _generate(self) -> None:
        rng = np.random.default_rng(self.seed)
        expected = int(np.ceil(self.horizon / self.mean_interarrival * 2.0)) + 10
        gaps = rng.exponential(self.mean_interarrival, size=expected)
        times = np.cumsum(gaps)
        while times.size and times[-1] < self.horizon:
            more = rng.exponential(self.mean_interarrival, size=expected)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        self._times = times[times < self.horizon]
        self._times_list = [float(t) for t in self._times]
        self._cursor = 0

    @property
    def arrival_times(self) -> np.ndarray:
        """All arrival times inside the horizon (read-only)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    @property
    def next_fire_time(self) -> float:
        """Earliest arrival not yet delivered to a monotone consumer.

        The cursor points at the first arrival at or after the end of the
        last :meth:`events_between` window (for the monotone window
        sequence a simulation produces), so this is the time that bounds a
        workload's quiescence hint; ``math.inf`` once the schedule is
        exhausted.
        """
        times = self._times_list
        cursor = self._cursor
        if cursor < len(times):
            return times[cursor]
        return math.inf

    def events_between(self, start: float, end: float) -> List[Event]:
        """Events with ``start <= time < end``.

        Simulation queries advance monotonically (each step asks about the
        interval that follows the previous one), so a cursor into the sorted
        arrival list answers the common case in O(events) instead of the
        O(total arrivals) array scan a fresh mask would cost on every step.
        Non-monotonic queries (tests, analysis code) rewind the cursor and
        stay correct, just without the sublinear fast path.
        """
        if end <= start:
            return []
        times = self._times_list
        cursor = self._cursor
        if cursor > 0 and cursor <= len(times) and times[cursor - 1] >= start:
            cursor = 0  # query went backwards: rewind and rescan
        while cursor < len(times) and times[cursor] < start:
            cursor += 1
        events: List[Event] = []
        while cursor < len(times) and times[cursor] < end:
            events.append(
                Event(
                    time=times[cursor], kind=self.kind, payload_size=self.payload_size
                )
            )
            cursor += 1
        self._cursor = cursor
        return events

    def reset(self) -> None:
        self._generate()
