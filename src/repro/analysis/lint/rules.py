"""The invariant rules (all but the thread-ownership race detector).

Each rule encodes one discipline this repo already documents and has
already been burned by:

* ``sqrt-parity`` — the PR 2/PR 4 bug class: ``x ** 0.5`` is ``pow``,
  which is not correctly rounded, while ``math.sqrt``/``numpy.sqrt``
  are — a scalar path using ``** 0.5`` can diverge from its batched
  kernel by an ulp and break the bit-equality pins.
* ``ledger-sum`` — numpy reductions are pairwise-summed; the ledger
  convention (``offered == stored + clipped + switching_loss`` at exact
  equality) requires the sequential add order the scalar engine uses, so
  float reductions in the bit-equality-critical modules must be spelled
  as sequential adds (or justified).
* ``additive-time`` — SegmentPlan invariant 5: simulated time advances
  ``time += dt`` per committed step, never ``start + k * dt``, so
  time-keyed behaviour (trace indexing, poll schedules) sees identical
  timestamps on every path.
* ``picklable-settings`` — ``RunSpec``/``ExperimentSettings`` cross
  process and cache boundaries; lambdas and local defs pickle on no
  backend and fingerprint in no store (today only caught at runtime by
  ``store.callable_identity``).
* ``exception-discipline`` — in ``store.py`` and ``remote/``, "corrupt
  entry is a miss" and "lost worker gets requeued" are contracts that
  must *log*: a blanket handler that swallows silently turns fault
  tolerance into fault invisibility.
* ``kernel-conformance`` — every lockstep kernel registered in
  ``KERNEL_BUILDERS`` must provide the ``LockstepKernel`` segment-replay
  entry points (``fast_forward``/``fast_forward_on``), directly or by
  inheritance, or batch fast-forwarding dies at runtime mid-sweep.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import Finding, Project, Rule, SourceFile
from repro.analysis.lint.threads import ThreadOwnershipRule


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_half(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0.5


class SqrtParityRule(Rule):
    id = "sqrt-parity"
    description = (
        "use math.sqrt, not ** 0.5 / pow(x, 0.5): pow is not correctly "
        "rounded, so scalar paths drift from their numpy-batched kernels"
    )
    scope = ("repro/**",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Pow)
                and _is_half(node.right)
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "square root spelled '** 0.5'; use math.sqrt (or "
                        "numpy.sqrt) so scalar and batched paths round "
                        "identically",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) in ("pow", "power")
                and len(node.args) >= 2
                and _is_half(node.args[1])
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "square root spelled 'pow(x, 0.5)'; use math.sqrt "
                        "(or numpy.sqrt) so scalar and batched paths round "
                        "identically",
                    )
                )
        return findings


class LedgerSumRule(Rule):
    id = "ledger-sum"
    description = (
        "no float sum()/np.sum in bit-equality-critical modules: numpy "
        "reduces pairwise, the ledger convention needs sequential adds"
    )
    scope = (
        "repro/buffers/*.py",
        "repro/sim/batch.py",
        "repro/sim/segments.py",
        "repro/sim/metrics.py",
    )

    def check(self, source: SourceFile) -> List[Finding]:
        # A reduction immediately wrapped in int() is integer-valued
        # counting (lane masks), not a float ledger.
        int_wrapped: Set[ast.AST] = set()
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == "int"
                and len(node.args) == 1
            ):
                int_wrapped.add(node.args[0])

        findings = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name != "sum" or node in int_wrapped:
                continue
            if isinstance(node.func, ast.Attribute):
                # ``(mask > 0).sum()`` / ``mask.sum()`` over comparisons is
                # boolean counting; everything else is a reduction.
                if isinstance(node.func.value, ast.Compare):
                    continue
                spelled = f"{_terminal_name(node.func.value) or '...'}.sum()"
            else:
                spelled = "sum()"
            findings.append(
                self.finding(
                    source,
                    node,
                    f"float reduction via {spelled} in a bit-equality-critical "
                    "module; accumulate sequentially (total += x) so the add "
                    "order matches the step-by-step oracle, or justify with a "
                    "pragma",
                )
            )
        return findings


#: Names that carry simulated time.  Wall-clock and bookkeeping names are
#: excluded: only *simulated* time is under the additive contract.
_TIME_NAMES = ("time", "times")
_TIME_EXCLUDE_PREFIXES = ("wall", "elapsed", "perf", "record")
_DT_NAMES = ("dt", "dt_on", "dt_off", "step_dt", "masked_dt")


def _is_time_target(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lstrip("_").lower()
    if any(lowered.startswith(prefix) for prefix in _TIME_EXCLUDE_PREFIXES):
        return False
    return lowered in _TIME_NAMES or lowered.endswith(("_time", "_times"))


def _has_dt_product(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult):
            for operand in (sub.left, sub.right):
                name = _terminal_name(operand)
                if name is not None and name.lstrip("_") in _DT_NAMES:
                    return True
    return False


class AdditiveTimeRule(Rule):
    id = "additive-time"
    description = (
        "simulated time advances 'time += dt' per committed step "
        "(SegmentPlan invariant 5), never reconstructed as start + k * dt"
    )
    scope = ("repro/sim/*.py", "repro/buffers/*.py")

    def check(self, source: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                targets: Sequence[ast.AST] = node.targets
                value = node.value
            elif isinstance(node, ast.AugAssign):
                targets = (node.target,)
                value = node.value
            else:
                continue
            if not any(_is_time_target(target) for target in targets):
                continue
            if _has_dt_product(value):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "simulated time reconstructed from a k * dt product; "
                        "the SegmentPlan contract mandates additive "
                        "accumulation (time += dt per committed step) so "
                        "time-keyed behaviour is bit-identical across engines",
                    )
                )
        return findings


#: Call targets whose arguments must stay picklable/fingerprintable.
_SETTINGS_CONSTRUCTORS = ("ExperimentSettings", "RunSpec")


class PicklableSettingsRule(Rule):
    id = "picklable-settings"
    description = (
        "no lambdas, nested functions, or local classes in RunSpec/"
        "ExperimentSettings construction (or buffer_factory=): they "
        "neither pickle across backends nor fingerprint in the store"
    )
    scope = ("repro/**",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        # local_defs[i] = names defined by defs/classes nested inside the
        # i-th enclosing function on the stack.
        stack: List[ast.AST] = []
        local_defs: List[Set[str]] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stack:
                    local_defs[-1].add(node.name)
                stack.append(node)
                local_defs.append(set())
                for child in ast.iter_child_nodes(node):
                    visit(child)
                stack.pop()
                local_defs.pop()
                return
            if isinstance(node, ast.ClassDef) and stack:
                local_defs[-1].add(node.name)
            if isinstance(node, ast.Call):
                self._check_call(source, node, local_defs, findings)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(source.tree)
        return findings

    def _check_call(
        self,
        source: SourceFile,
        call: ast.Call,
        local_defs: List[Set[str]],
        findings: List[Finding],
    ) -> None:
        is_constructor = _terminal_name(call.func) in _SETTINGS_CONSTRUCTORS
        locals_in_scope: Set[str] = set().union(*local_defs) if local_defs else set()
        for keyword in call.keywords:
            if keyword.arg == "buffer_factory" and not is_constructor:
                # buffer_factory rides RunSpecs wherever it is passed.
                self._check_value(
                    source, keyword.value, locals_in_scope, findings, "buffer_factory"
                )
        if not is_constructor:
            return
        label = _terminal_name(call.func) or "settings"
        for value in list(call.args) + [kw.value for kw in call.keywords]:
            self._check_value(source, value, locals_in_scope, findings, label)

    def _check_value(
        self,
        source: SourceFile,
        value: ast.AST,
        locals_in_scope: Set[str],
        findings: List[Finding],
        label: str,
    ) -> None:
        for node in ast.walk(value):
            if isinstance(node, ast.Lambda):
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"lambda passed into {label}: it cannot pickle across "
                        "pool/remote backends and has no stable store "
                        "fingerprint; use a module-level callable",
                    )
                )
            elif isinstance(node, ast.Name) and node.id in locals_in_scope:
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"locally-defined callable {node.id!r} passed into "
                        f"{label}: nested functions and local classes cannot "
                        "pickle across backends; move it to module level",
                    )
                )


_BLANKET_EXCEPTIONS = ("Exception", "BaseException")
_LOG_METHODS = (
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
)


def _is_blanket(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    return any(_terminal_name(node) in _BLANKET_EXCEPTIONS for node in nodes)


def _handler_is_loud(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _LOG_METHODS:
                base = _terminal_name(node.func.value) or ""
                if "log" in base.lower() or base == "warnings":
                    return True
    return False


class ExceptionDisciplineRule(Rule):
    id = "exception-discipline"
    description = (
        "no silently-swallowed bare/blanket except in store.py or remote/: "
        "'corrupt entry is a miss' and 'lost worker requeues' must log"
    )
    scope = ("repro/experiments/store.py", "repro/experiments/remote/*.py")

    def check(self, source: SourceFile) -> List[Finding]:
        findings = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        source,
                        node,
                        "bare 'except:' swallows everything including "
                        "KeyboardInterrupt; name the exceptions (and log "
                        "what was tolerated)",
                    )
                )
            elif _is_blanket(node) and not _handler_is_loud(node):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "blanket 'except Exception' that neither logs nor "
                        "re-raises: a tolerated fault here (corrupt cache "
                        "entry, lost worker) must leave a log trail",
                    )
                )
        return findings


class KernelConformanceRule(Rule):
    id = "kernel-conformance"
    description = (
        "every kernel registered in KERNEL_BUILDERS must implement or "
        "inherit the LockstepKernel entry points fast_forward/fast_forward_on"
    )
    scope = ()  # whole-project rule: runs in finalize only
    required_methods = ("fast_forward", "fast_forward_on")

    def finalize(self, project: Project) -> List[Finding]:
        batch_files = project.match("repro/sim/batch.py") or project.match(
            "*/sim/batch.py"
        )
        if not batch_files:
            return []
        registered = self._registered_kernels(batch_files[0])
        if not registered:
            return []
        classes = self._class_index(project)
        findings = []
        for kernel_name in registered:
            if kernel_name not in classes:
                continue  # out-of-tree kernel: nothing to check statically
            missing = [
                method
                for method in self.required_methods
                if not self._resolves(kernel_name, method, classes)
            ]
            if missing:
                source, node = classes[kernel_name]
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"kernel {kernel_name!r} is registered in "
                        f"KERNEL_BUILDERS but neither defines nor inherits "
                        f"{', '.join(missing)}; batch fast-forwarding would "
                        "die mid-sweep",
                    )
                )
        return findings

    @staticmethod
    def _registered_kernels(source: SourceFile) -> List[str]:
        """Class names referenced by the ``KERNEL_BUILDERS = (...)`` tuple."""
        names: List[str] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "KERNEL_BUILDERS"
                for t in node.targets
            ):
                continue
            elements = (
                node.value.elts
                if isinstance(node.value, (ast.Tuple, ast.List))
                else []
            )
            for element in elements:
                # StaticBatchKernel.build -> StaticBatchKernel
                if isinstance(element, ast.Attribute):
                    name = _terminal_name(element.value)
                else:
                    name = _terminal_name(element)
                if name:
                    names.append(name)
        return names

    @staticmethod
    def _class_index(
        project: Project,
    ) -> Dict[str, Tuple[SourceFile, ast.ClassDef]]:
        index: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
        for source in project.files.values():
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    index.setdefault(node.name, (source, node))
        return index

    def _resolves(
        self,
        class_name: str,
        method: str,
        classes: Dict[str, Tuple[SourceFile, ast.ClassDef]],
        seen: Optional[Set[str]] = None,
    ) -> bool:
        seen = seen or set()
        if class_name in seen or class_name not in classes:
            return False
        seen.add(class_name)
        _, node = classes[class_name]
        for statement in node.body:
            if (
                isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name == method
            ):
                return True
        return any(
            self._resolves(base_name, method, classes, seen)
            for base in node.bases
            if (base_name := _terminal_name(base)) is not None
        )


#: Every rule, in report order.  The thread-ownership detector lives in
#: :mod:`repro.analysis.lint.threads`.
ALL_RULES: Tuple[Rule, ...] = (
    SqrtParityRule(),
    LedgerSumRule(),
    AdditiveTimeRule(),
    PicklableSettingsRule(),
    ThreadOwnershipRule(),
    ExceptionDisciplineRule(),
    KernelConformanceRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(
        f"unknown rule {rule_id!r}; known rules: "
        + ", ".join(rule.id for rule in ALL_RULES)
    )
