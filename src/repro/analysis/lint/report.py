"""Text and JSON reporters for lint results.

The text form is the human/console presentation; the JSON form is the
machine artifact the CI job uploads (``--json-report``), carrying enough
to reconstruct the run: findings, suppression counts, and per-rule
totals.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, Sequence

from repro.analysis.lint.core import LintResult, Rule


def render_text(result: LintResult, rules: Sequence[Rule]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    for entry in result.unmatched_baseline:
        lines.append(
            f"{entry.path}: baseline: stale entry for {entry.rule} "
            f"({entry.line_text!r} no longer matches; remove it)"
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
        f" [{result.suppressed_by_pragma} pragma-suppressed,"
        f" {result.suppressed_by_baseline} baselined]"
    )
    lines.append(summary if lines else f"clean: {summary}")
    return "\n".join(lines)


def render_json(result: LintResult, rules: Sequence[Rule]) -> str:
    """Machine-readable report (the CI artifact)."""
    by_rule = Counter(finding.rule for finding in result.findings)
    payload: Dict[str, Any] = {
        "clean": result.clean,
        "files_checked": result.files_checked,
        "suppressed_by_pragma": result.suppressed_by_pragma,
        "suppressed_by_baseline": result.suppressed_by_baseline,
        "rules": {rule.id: rule.description for rule in rules},
        "counts_by_rule": dict(sorted(by_rule.items())),
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "message": finding.message,
                "line_text": finding.line_text,
            }
            for finding in result.findings
        ],
        "stale_baseline_entries": [
            {"rule": entry.rule, "path": entry.path, "line_text": entry.line_text}
            for entry in result.unmatched_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
