"""``react-repro lint`` / ``python -m repro.analysis``.

Runs the invariant rules over the installed ``repro`` package (or any
paths given), applies the pragma and baseline escape hatches, prints the
text report, and exits non-zero on surviving findings — the blocking CI
contract.  ``--json-report FILE`` additionally writes the machine-readable
report (the CI artifact) without changing the console output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.lint.core import LintResult, Rule, lint_paths
from repro.analysis.lint.report import render_json, render_text
from repro.analysis.lint.rules import ALL_RULES, rule_by_id

#: Exit codes: findings are 1, usage/configuration problems are 2.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def default_lint_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_baseline(paths: Sequence[Path]) -> Optional[Path]:
    """Walk up from the lint roots looking for the committed baseline."""
    for start in paths:
        probe = Path(start).resolve()
        if probe.is_file():
            probe = probe.parent
        for directory in (probe, *probe.parents):
            candidate = directory / DEFAULT_BASELINE_NAME
            if candidate.is_file():
                return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="react-repro lint",
        description=(
            "Check the repro tree against its bit-equality, ledger, "
            "threading, and picklability contracts.  Suppress a finding "
            "with '# repro-lint: disable=RULE -- justification' on (or "
            "above) the line, or grandfather it in the committed baseline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE[,RULE...]",
        default=None,
        help="run only the named rules (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="console report format (default: text)",
    )
    parser.add_argument(
        "--json-report",
        metavar="FILE",
        type=Path,
        default=None,
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help=(
            f"baseline file of grandfathered findings (default: the nearest "
            f"{DEFAULT_BASELINE_NAME} above the linted paths, if any)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="JUSTIFICATION",
        default=None,
        help=(
            "write the surviving findings to the baseline file with the "
            "given justification text and exit 0 (requires --baseline or a "
            "discoverable baseline location)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rules and the invariants they encode, then exit",
    )
    return parser


def _selected_rules(select: Optional[str]) -> List[Rule]:
    if select is None:
        return list(ALL_RULES)
    try:
        return [rule_by_id(name.strip()) for name in select.split(",") if name.strip()]
    except KeyError as error:
        raise SystemExit(f"lint: {error.args[0]}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:22s} {rule.description}")
        return EXIT_CLEAN

    rules = _selected_rules(args.select)
    paths = [Path(p) for p in args.paths] or [default_lint_root()]
    for path in paths:
        if not path.exists():
            print(f"lint: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE

    baseline = None
    baseline_path = args.baseline
    if not args.no_baseline:
        if baseline_path is None:
            baseline_path = discover_baseline(paths)
        if baseline_path is not None and baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError) as error:
                print(f"lint: bad baseline {baseline_path}: {error}", file=sys.stderr)
                return EXIT_USAGE

    try:
        result = lint_paths(paths, rules, baseline=None)  # raw pass first
    except SyntaxError as error:
        print(f"lint: cannot parse {error.filename}: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline is not None:
        target = args.baseline or baseline_path or Path(DEFAULT_BASELINE_NAME)
        Baseline.from_findings(result.findings, args.write_baseline).save(target)
        print(f"lint: wrote {len(result.findings)} entries to {target}")
        return EXIT_CLEAN

    if baseline is not None:
        survivors, suppressed, unmatched = baseline.apply(result.findings)
        result = LintResult(
            findings=survivors,
            suppressed_by_pragma=result.suppressed_by_pragma,
            suppressed_by_baseline=suppressed,
            files_checked=result.files_checked,
            unmatched_baseline=unmatched,
        )

    if args.json_report is not None:
        args.json_report.parent.mkdir(parents=True, exist_ok=True)
        args.json_report.write_text(render_json(result, rules) + "\n")
    if args.format == "json":
        print(render_json(result, rules))
    else:
        print(render_text(result, rules))

    if result.unmatched_baseline:
        return EXIT_FINDINGS  # a stale baseline must shrink, not linger
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
