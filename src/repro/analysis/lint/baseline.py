"""Committed baseline: the grandfathering escape hatch.

A baseline entry matches findings by ``(rule, path, stripped source
line)`` rather than by line number, so unrelated edits that shift a file
do not invalidate it — while any edit to the flagged line itself (the
edit that should re-open the question) does.  Every entry must carry a
written justification; an entry that no longer matches anything is
reported so the baseline can only shrink, never silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.lint.core import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up from the repo root by the CLI.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    line_text: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)


class Baseline:
    """A set of grandfathered findings with consume-once matching.

    Two identical flagged lines in one file need two entries: matching
    consumes an entry per finding, so the baseline cannot quietly cover
    new copies of an old violation.
    """

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        entries = []
        for raw in payload.get("entries", []):
            entry = BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                line_text=raw["line_text"],
                justification=str(raw.get("justification", "")).strip(),
            )
            if not entry.justification:
                raise ValueError(
                    f"baseline entry for {entry.rule} at {entry.path} has no "
                    "justification; grandfathered findings must say why"
                )
            entries.append(entry)
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str
    ) -> "Baseline":
        return cls(
            [
                BaselineEntry(f.rule, f.path, f.line_text, justification)
                for f in findings
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "line_text": entry.line_text,
                    "justification": entry.justification,
                }
                for entry in self.entries
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, List[BaselineEntry]]:
        """``(survivors, suppressed_count, unmatched_entries)``."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + 1
        survivors: List[Finding] = []
        suppressed = 0
        for finding in findings:
            key = (finding.rule, finding.path, finding.line_text)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed += 1
            else:
                survivors.append(finding)
        unmatched = [entry for entry in self.entries if budget.get(entry.key, 0) > 0]
        for entry in unmatched:
            budget[entry.key] -= 1
        return survivors, suppressed, unmatched
