"""Rule framework: findings, pragmas, source files, and the lint runner.

A :class:`Rule` owns one invariant.  Per-file rules implement
:meth:`Rule.check`; whole-tree rules (the kernel-conformance check needs
the class hierarchy and the ``KERNEL_BUILDERS`` registration from
different modules) implement :meth:`Rule.finalize` over the parsed
:class:`Project`.

Suppression has exactly two escape hatches, both of which require written
justification:

* a per-line pragma — ``# repro-lint: disable=RULE[,RULE...] -- why`` —
  on the flagged line, or alone on the line above it;
* a committed baseline entry (:mod:`repro.analysis.lint.baseline`) for
  grandfathered findings.

A pragma without a justification (or naming an unknown rule) is itself a
finding under the reserved ``pragma`` rule id, so the escape hatch cannot
silently widen.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # import cycle: baseline.py imports Finding from here
    from repro.analysis.lint.baseline import Baseline, BaselineEntry

#: Reserved rule id for malformed pragmas; never suppressible by pragma.
PRAGMA_RULE_ID = "pragma"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_\-, ]+?)"
    r"\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # package-relative posix path, e.g. "repro/sim/batch.py"
    line: int  # 1-based
    column: int  # 0-based
    message: str
    line_text: str = ""  # stripped source line; the baseline matches on it

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int  # the line the pragma *suppresses* (not necessarily its own)
    rules: Tuple[str, ...]
    justification: str
    pragma_line: int  # where the comment physically lives


class SourceFile:
    """One parsed source file plus its pragma table.

    ``rel_path`` is the path rules match their scopes against — posix,
    rooted at the package parent (``repro/sim/batch.py``) so scope
    patterns are stable regardless of where the tree is checked out.
    """

    def __init__(self, rel_path: str, text: str, path: Optional[Path] = None) -> None:
        self.rel_path = rel_path.replace("\\", "/")
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text)  # SyntaxError propagates: unlintable file
        self.pragmas: Dict[int, List[Pragma]] = {}
        self.pragma_errors: List[Finding] = []
        self._parse_pragmas()

    def _parse_pragmas(self) -> None:
        for number, raw in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(raw)
            if match is None:
                continue
            rules = tuple(
                name.strip() for name in match.group("rules").split(",") if name.strip()
            )
            justification = (match.group("why") or "").strip()
            # A pragma alone on its line suppresses the *next* line; a
            # trailing pragma suppresses its own.
            own_line = raw.strip().startswith("#")
            target = number + 1 if own_line else number
            pragma = Pragma(target, rules, justification, pragma_line=number)
            if not justification:
                self.pragma_errors.append(
                    Finding(
                        PRAGMA_RULE_ID,
                        self.rel_path,
                        number,
                        raw.index("#"),
                        "pragma is missing its justification "
                        "(write '# repro-lint: disable=RULE -- why this is safe')",
                        line_text=raw.strip(),
                    )
                )
                continue
            self.pragmas.setdefault(target, []).append(pragma)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule == PRAGMA_RULE_ID:
            return False
        return any(
            finding.rule in pragma.rules
            for pragma in self.pragmas.get(finding.line, ())
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass
class Project:
    """Every parsed file of one lint run, for whole-tree rules."""

    files: Dict[str, SourceFile] = field(default_factory=dict)

    def match(self, pattern: str) -> List[SourceFile]:
        from fnmatch import fnmatch

        return [
            source
            for rel_path, source in sorted(self.files.items())
            if fnmatch(rel_path, pattern)
        ]


class Rule:
    """One invariant.  Subclasses set the class attributes and override
    :meth:`check` (per file) and/or :meth:`finalize` (whole project)."""

    #: Stable identifier used in reports, pragmas, and the baseline.
    id: str = ""
    #: One-line statement of the invariant, shown by ``lint --list-rules``.
    description: str = ""
    #: fnmatch globs (against ``SourceFile.rel_path``) this rule covers.
    scope: Tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        from fnmatch import fnmatch

        return any(fnmatch(rel_path, pattern) for pattern in self.scope)

    def check(self, source: SourceFile) -> List[Finding]:
        return []

    def finalize(self, project: Project) -> List[Finding]:
        return []

    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            self.id,
            source.rel_path,
            line,
            column,
            message,
            line_text=source.line_text(line),
        )


@dataclass
class LintResult:
    """What one lint run produced, before and after suppression."""

    findings: List[Finding]  # surviving findings, sorted
    suppressed_by_pragma: int = 0
    suppressed_by_baseline: int = 0
    files_checked: int = 0
    unmatched_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.column, finding.rule)


def lint_sources(
    sources: Sequence[SourceFile],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run ``rules`` over parsed ``sources`` and apply both escape hatches."""
    project = Project({source.rel_path: source for source in sources})
    raw: List[Finding] = []
    for source in sources:
        raw.extend(source.pragma_errors)
        for rule in rules:
            if rule.applies_to(source.rel_path):
                raw.extend(rule.check(source))
    for rule in rules:
        raw.extend(rule.finalize(project))

    survivors: List[Finding] = []
    pragma_hits = 0
    for finding in raw:
        source = project.files.get(finding.path)
        if source is not None and source.suppressed(finding):
            pragma_hits += 1
        else:
            survivors.append(finding)

    baseline_hits = 0
    unmatched = []
    if baseline is not None:
        survivors, baseline_hits, unmatched = baseline.apply(survivors)

    return LintResult(
        findings=sorted(survivors, key=_sort_key),
        suppressed_by_pragma=pragma_hits,
        suppressed_by_baseline=baseline_hits,
        files_checked=len(sources),
        unmatched_baseline=unmatched,
    )


def discover_files(paths: Iterable[Path]) -> List[Tuple[Path, str]]:
    """Expand ``paths`` into ``(file, rel_path)`` pairs.

    ``rel_path`` is rooted at the directory *containing* the topmost
    package directory (the one whose parent has no ``__init__.py``), so a
    file under ``src/repro/sim/`` always lints as ``repro/sim/...`` no
    matter which directory the CLI was pointed at.
    """
    pairs: List[Tuple[Path, str]] = []
    for path in paths:
        path = Path(path).resolve()
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            pairs.append((file, _package_rel_path(file)))
    return pairs


def _package_rel_path(file: Path) -> str:
    root = file.parent
    while (root.parent / "__init__.py").exists() or (root / "__init__.py").exists():
        if not (root / "__init__.py").exists():
            break
        root = root.parent
    return file.relative_to(root).as_posix()


def lint_paths(
    paths: Iterable[Path],
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Discover, parse, and lint every ``*.py`` under ``paths``."""
    sources = []
    for file, rel_path in discover_files(paths):
        sources.append(SourceFile(rel_path, file.read_text(), path=file))
    return lint_sources(sources, rules, baseline)
