"""``thread-ownership``: a lightweight static race detector for ``remote/``.

The distributed-sweep subsystem's concurrency contract (documented in
``coordinator.py``) is *single ownership*: all scheduling state belongs to
the dispatching main loop, and the socket threads (accept thread,
per-connection readers, the worker's heartbeat thread) communicate with it
exclusively by pushing onto an event queue — or, for the few shared
primitives, under a lock.

This rule checks that contract per class:

1. **Thread entry points** are methods passed as ``target=self.<m>`` to a
   ``Thread(...)`` construction anywhere in the class.
2. The intra-class call graph assigns every method its execution
   *contexts*: the main context (reachable from public methods without
   crossing a thread spawn) and/or one context per thread entry point
   (reachable from that entry).
3. **Mutations** of ``self.<attr>`` — assignments (including subscript
   writes like ``self.pending[shard] = ...``), augmented assignments, and
   calls to mutating container methods — are collected per method,
   except inside ``__init__`` (construction happens-before every thread
   start) and except through the sanctioned channels: ``put``/``get`` on
   attributes built from ``queue.Queue(...)``, ``set``/``clear``/``wait``
   on ``threading.Event()`` attributes, and any mutation inside a
   ``with self.<lock>:`` block over a ``threading.Lock()``/``RLock()``
   attribute.
4. An attribute mutated from more than one context — or from a helper
   that is itself reachable from several contexts — is reported at every
   mutation site that involves a thread context.

The detector is intentionally conservative and class-local: it does not
track aliasing, objects handed between classes, or cross-module sharing.
It exists to catch the cheap-to-catch, expensive-to-debug mistake — a
reader loop "just updating" a scheduling field instead of enqueueing an
event — the moment it is written, not when a sweep hangs in CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint.core import Finding, Rule, SourceFile

#: Constructors whose instances are sanctioned cross-thread channels.
_QUEUE_TYPES = ("Queue", "LifoQueue", "PriorityQueue", "SimpleQueue")
_LOCK_TYPES = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")
_EVENT_TYPES = ("Event",)

#: Methods that mutate their receiver (containers and channels alike).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "pop",
        "popleft",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "put",
        "put_nowait",
        "set",
    }
)

#: Methods that are safe on the sanctioned channel types from any thread.
_CHANNEL_SAFE = frozenset(
    {"put", "put_nowait", "get", "get_nowait", "task_done", "set", "clear", "wait"}
)

_MAIN = "main"


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` writes ``self.<attr>`` or ``self.<attr>[...]``.

    Subscript writes are how the coordinator mutates its scheduling dicts
    (``self.pending[shard] = ...``), so they count as mutations of the
    container attribute.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


def _flatten_targets(node: ast.AST):
    """Individual targets of a (possibly tuple-unpacking) assignment."""
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _flatten_targets(element)
    elif isinstance(node, ast.Starred):
        yield from _flatten_targets(node.value)
    else:
        yield node


@dataclass
class _Mutation:
    attr: str
    method: str
    node: ast.AST
    locked: bool


@dataclass
class _ClassModel:
    name: str
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    queue_attrs: Set[str] = field(default_factory=set)
    lock_attrs: Set[str] = field(default_factory=set)
    event_attrs: Set[str] = field(default_factory=set)
    thread_entries: Set[str] = field(default_factory=set)
    calls: Dict[str, Set[str]] = field(default_factory=dict)  # method -> callees
    mutations: List[_Mutation] = field(default_factory=list)


class ThreadOwnershipRule(Rule):
    id = "thread-ownership"
    description = (
        "scheduling state is single-owner: an instance attribute mutated "
        "by a thread entry point must flow through the event queue or a "
        "held lock, never be written from two execution contexts"
    )
    scope = ("repro/experiments/remote/*.py",)

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------

    def _check_class(
        self, source: SourceFile, class_node: ast.ClassDef
    ) -> List[Finding]:
        model = self._build_model(class_node)
        if not model.thread_entries:
            return []  # no threads spawned here: nothing to own
        contexts = self._contexts(model)
        return self._report(source, model, contexts)

    def _build_model(self, class_node: ast.ClassDef) -> _ClassModel:
        model = _ClassModel(class_node.name)
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                model.methods[statement.name] = statement
        for name, method in model.methods.items():
            self._scan_method(model, name, method)
        return model

    def _scan_method(self, model: _ClassModel, name: str, method: ast.AST) -> None:
        model.calls.setdefault(name, set())
        lock_depth = 0

        def visit(node: ast.AST) -> None:
            nonlocal lock_depth
            if isinstance(node, ast.With):
                held = sum(
                    1
                    for item in node.items
                    if (attr := _self_attr(item.context_expr)) is not None
                    and attr in model.lock_attrs
                )
                lock_depth += held
                for child in ast.iter_child_nodes(node):
                    visit(child)
                lock_depth -= held
                return

            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                annotation_only = isinstance(node, ast.AnnAssign) and node.value is None
                for target in (t for raw in targets for t in _flatten_targets(raw)):
                    attr = _mutated_attr(target)
                    if attr is None or annotation_only:
                        continue
                    if _self_attr(target) is not None:
                        # Only a direct ``self.attr = Queue()`` binding (not a
                        # subscript write into it) classifies the channel.
                        self._classify_channel(model, attr, node)
                    model.mutations.append(
                        _Mutation(attr, name, node, locked=lock_depth > 0)
                    )

            if isinstance(node, ast.Call):
                # Thread(target=self.<m>) registers a thread entry point.
                if _terminal_name(node.func) == "Thread":
                    for keyword in node.keywords:
                        if keyword.arg == "target":
                            target_attr = _self_attr(keyword.value)
                            if target_attr is not None:
                                model.thread_entries.add(target_attr)
                # self.<m>(...) is an intra-class call-graph edge;
                # self.<attr>.<mutator>(...) is an attribute mutation.
                if isinstance(node.func, ast.Attribute):
                    receiver_attr = _self_attr(node.func)
                    if receiver_attr is not None and receiver_attr in model.methods:
                        model.calls[name].add(receiver_attr)
                    chained = _self_attr(node.func.value)
                    if chained is not None and node.func.attr in _MUTATING_METHODS:
                        channel = chained in model.queue_attrs | model.event_attrs
                        if not (channel and node.func.attr in _CHANNEL_SAFE):
                            model.mutations.append(
                                _Mutation(chained, name, node, locked=lock_depth > 0)
                            )

            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(method)

    @staticmethod
    def _classify_channel(model: _ClassModel, attr: str, node: ast.AST) -> None:
        value = getattr(node, "value", None)
        if not isinstance(value, ast.Call):
            return
        constructor = _terminal_name(value.func)
        if constructor in _QUEUE_TYPES:
            model.queue_attrs.add(attr)
        elif constructor in _LOCK_TYPES:
            model.lock_attrs.add(attr)
        elif constructor in _EVENT_TYPES:
            model.event_attrs.add(attr)

    # ------------------------------------------------------------------
    # Context propagation and reporting
    # ------------------------------------------------------------------

    def _contexts(self, model: _ClassModel) -> Dict[str, Set[str]]:
        """Execution contexts per method: ``main`` and/or thread entries."""

        def closure(seeds: Set[str], *, enter_entries: bool) -> Set[str]:
            reached = set(seeds)
            frontier = list(seeds)
            while frontier:
                current = frontier.pop()
                for callee in model.calls.get(current, ()):
                    if not enter_entries and callee in model.thread_entries:
                        continue  # calling an entry inline is not spawning it
                    if callee not in reached:
                        reached.add(callee)
                        frontier.append(callee)
            return reached

        called_by_someone = {
            callee for callees in model.calls.values() for callee in callees
        }
        main_seeds = {
            name
            for name in model.methods
            if name not in model.thread_entries and name not in called_by_someone
        }
        main_reach = closure(main_seeds, enter_entries=False)
        contexts: Dict[str, Set[str]] = {name: set() for name in model.methods}
        for name in main_reach:
            contexts[name].add(_MAIN)
        for entry in model.thread_entries:
            for name in closure({entry}, enter_entries=True):
                contexts[name].add(f"thread:{entry}")
        for name, ctxs in contexts.items():
            if not ctxs:
                ctxs.add(_MAIN)  # unreachable helper: assume main
        return contexts

    def _report(
        self,
        source: SourceFile,
        model: _ClassModel,
        contexts: Dict[str, Set[str]],
    ) -> List[Finding]:
        sites: Dict[str, List[Tuple[_Mutation, Set[str]]]] = {}
        for mutation in model.mutations:
            if mutation.method == "__init__":
                continue  # construction happens-before every thread start
            if mutation.locked:
                continue  # held lock: sanctioned
            ctxs = contexts.get(mutation.method, {_MAIN})
            sites.setdefault(mutation.attr, []).append((mutation, ctxs))

        findings = []
        for attr, attr_sites in sorted(sites.items()):
            all_contexts: Set[str] = set()
            for _, ctxs in attr_sites:
                all_contexts |= ctxs
            if len(all_contexts) < 2:
                continue
            owner = _MAIN if _MAIN in all_contexts else sorted(all_contexts)[0]
            for mutation, ctxs in attr_sites:
                if ctxs == {owner}:
                    continue
                offending = sorted(ctxs - {owner}) or sorted(ctxs)
                findings.append(
                    self.finding(
                        source,
                        mutation.node,
                        f"{model.name}.{attr} is mutated from "
                        f"{' and '.join(offending)} in {mutation.method}() but "
                        f"owned by {owner} (also mutated there); route the "
                        "update through the event queue or hold a lock",
                    )
                )
        return findings
