"""``repro.analysis.lint``: the repo-specific invariant linter.

Every fast path in this reproduction is pinned to the step-by-step oracle
by source-level disciplines that are documented (README, CHANGES.md, the
``SegmentPlan`` contract) but — before this package — unenforced:
``math.sqrt`` instead of ``** 0.5`` for numpy parity, sequential adds
instead of float ``sum()`` where ledgers must be bit-equal, additive
``time += dt`` accumulation, lambda-free ``RunSpec`` settings, the
single-owner event-queue threading rule in ``experiments/remote/``, and
"a corrupt cache entry is a miss, and it logs".  This package turns each
of those conventions into a machine-checked contract:

* :mod:`~repro.analysis.lint.core` — the rule framework: :class:`Rule`
  with AST-visitor dispatch, per-line justification-carrying disable
  pragmas, and the lint runner.
* :mod:`~repro.analysis.lint.rules` /
  :mod:`~repro.analysis.lint.threads` — the rules themselves.
* :mod:`~repro.analysis.lint.baseline` — the committed-baseline escape
  hatch for grandfathered findings.
* :mod:`~repro.analysis.lint.report` — text and JSON reporters.
* :mod:`~repro.analysis.lint.cli` — ``react-repro lint`` /
  ``python -m repro.analysis``.

The tree self-hosts: CI runs the linter as a blocking job, so the suite
of disciplines can only grow monotonically — a new fast path either
follows the contracts or carries a written justification.
"""

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.core import (
    Finding,
    LintResult,
    Project,
    Rule,
    SourceFile,
    lint_paths,
    lint_sources,
)
from repro.analysis.lint.rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "SourceFile",
    "lint_paths",
    "lint_sources",
    "rule_by_id",
]
