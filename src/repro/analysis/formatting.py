"""Plain-text table rendering for experiment output.

The experiment harness prints the same rows the paper's tables report;
these helpers keep the formatting consistent (and dependency-free — no
plotting libraries are required to inspect any result).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 100.0:
            return f"{value:.0f}"
        if abs(value) >= 1.0:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]], title: Optional[str] = None
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_matrix(
    matrix: Mapping[str, Mapping[str, float]],
    row_label: str = "row",
    title: Optional[str] = None,
) -> str:
    """Render a nested ``{row: {column: value}}`` mapping as a table."""
    rows = []
    for row_name, columns in matrix.items():
        row: Dict[str, object] = {row_label: row_name}
        row.update(columns)
        rows.append(row)
    return format_table(rows, title)


def percent(value: float, digits: int = 1) -> str:
    """Format a ratio as a signed percentage string (0.256 -> '+25.6%')."""
    return f"{value * 100.0:+.{digits}f}%"
