"""``python -m repro.analysis`` — the invariant linter's module entry point."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
