"""Analysis helpers: table rendering, aggregation, and figures of merit."""

from repro.analysis.formatting import format_table, format_matrix, percent
from repro.analysis.aggregate import (
    matrix_from_results,
    mean_over_traces,
    relative_improvement,
)

__all__ = [
    "format_table",
    "format_matrix",
    "percent",
    "matrix_from_results",
    "mean_over_traces",
    "relative_improvement",
]
