"""Aggregation helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.sim.results import SimulationResult


def matrix_from_results(
    results: Iterable[SimulationResult],
    value: str = "work_units",
) -> Dict[str, Dict[str, float]]:
    """Pivot results into ``{trace: {buffer: value}}``.

    ``value`` selects which scalar to extract: any attribute of
    :class:`~repro.sim.results.SimulationResult` (e.g. ``work_units``,
    ``on_time``, ``duty_cycle``) or ``"latency"`` which maps a
    never-started system to infinity.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for result in results:
        row = matrix.setdefault(result.trace_name, {})
        if value == "latency":
            extracted = result.latency if result.latency is not None else float("inf")
        else:
            extracted = float(getattr(result, value))
        row[result.buffer_name] = extracted
    return matrix


def mean_over_traces(matrix: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
    """Column-wise arithmetic mean of a ``{trace: {buffer: value}}`` matrix.

    Only buffers present in every trace row are averaged over the rows that
    contain them, matching the "Mean" row the paper's tables include.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in matrix.values():
        for buffer_name, value in row.items():
            if value == float("inf"):
                continue
            sums[buffer_name] = sums.get(buffer_name, 0.0) + value
            counts[buffer_name] = counts.get(buffer_name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def relative_improvement(
    means: Mapping[str, float], subject: str, baseline: str
) -> float:
    """Relative improvement of ``subject`` over ``baseline`` (0.256 = +25.6 %)."""
    if baseline not in means or subject not in means:
        raise KeyError(f"need both {subject!r} and {baseline!r} in {sorted(means)}")
    if means[baseline] == 0.0:
        return float("inf") if means[subject] > 0.0 else 0.0
    return means[subject] / means[baseline] - 1.0
